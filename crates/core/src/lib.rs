//! # xseq — sequence-based XML indexing via constraint sequences
//!
//! A from-scratch implementation of Wang & Meng, *On the Sequencing of Tree
//! Structures for XML Indexing* (ICDE 2005): XML documents and queries are
//! transformed into **constraint sequences** of path-encoded nodes, and
//! structured queries are answered *holistically* through constraint
//! subsequence matching — no join operations, no per-document
//! post-processing, no false alarms:
//!
//! ```text
//! Tree Pattern ⇒ P(Doc Ids)
//! ```
//!
//! ## Quick start
//!
//! ```
//! use xseq::{Database, DatabaseBuilder, Sequencing};
//!
//! let mut db = DatabaseBuilder::new()
//!     .sequencing(Sequencing::Probability) // the paper's g_best
//!     .build_from_xml([
//!         "<project><research><loc>newyork</loc></research></project>",
//!         "<project><develop><loc>boston</loc></develop></project>",
//!     ])
//!     .unwrap();
//!
//! let hits = db.query_xpath("/project//loc[text='boston']").unwrap();
//! assert_eq!(hits, vec![1]);
//! ```
//!
//! ## Crate map
//!
//! * [`xml`] — documents, parsing, designators, path encoding, patterns,
//!   the brute-force ground-truth matcher.
//! * [`sequence`] — constraints (`f1`, forward prefix `f2`), the Theorem 1
//!   decoder, sequencing strategies (DF/BF/Random/probability-ordered),
//!   Prüfer codes, isomorphic expansion.
//! * [`schema`] — occurrence probabilities `p(C|root)` (estimated or
//!   declared) and query-tuning weights `w(C)` (Eq. 6).
//! * [`index`] — the trie + path-link index, Algorithm 1 and the order-free
//!   `tree_search`, wildcard planning.
//! * [`query`] — the XPath-subset parser.
//! * [`storage`] — 4 KiB pages, buffer pool, the disk layout (`TrieView`
//!   over pages) used for the I/O experiments.
//! * [`telemetry`] — lock-free counters/gauges/latency histograms, the
//!   named [`MetricsRegistry`] behind [`Database::metrics`], and the
//!   snapshot exporters (`to_json`, `render_table`).
//! * [`baselines`] — DataGuide-, XISS- and ViST-style comparators.
//! * [`datagen`] — deterministic synthetic / DBLP-like / XMark-like
//!   workload generators and the paper's query sets.
//!
//! ## Observability
//!
//! Every database owns a [`MetricsRegistry`]; each [`Database::query_xpath`]
//! records per-phase latency (`query.parse`, `index.plan`,
//! `sequence.encode`, `index.search`) and work counters, document ingestion
//! records `xml.parse`, and paged storage mirrors its page traffic into
//! `storage.pool.*`.  [`Database::metrics`] returns a [`Snapshot`];
//! [`QueryOutcome::explain`] renders one query's work breakdown.
#![forbid(unsafe_code)]

pub use xseq_baselines as baselines;
pub use xseq_datagen as datagen;
pub use xseq_exec as exec;
pub use xseq_index as index;
pub use xseq_query as query;
pub use xseq_schema as schema;
pub use xseq_sequence as sequence;
pub use xseq_storage as storage;
pub use xseq_telemetry as telemetry;
pub use xseq_xml as xml;

pub use xseq_exec::{Pool, Ticker};
pub use xseq_index::{
    DeltaView, IndexStats, IndexTelemetry, IntegrityReport, InvariantClass, MergeOutcome,
    PlanOptions, QueryContext, QueryOutcome, QueryStats, SearchStats, SegmentStats, TieredDelta,
    Violation, XmlIndex,
};
pub use xseq_query::{parse_xpath, parse_xpath_readonly, ParseError};
pub use xseq_schema::{ClassStats, ProbabilityModel, SchemaTree, WeightMap, WorkloadProfile};
pub use xseq_sequence::{PriorityMap, Sequence, Strategy};
pub use xseq_storage::{BufferPool, PagedTrie, PoolStats, PoolTelemetry};
pub use xseq_telemetry::{
    AnomalyAlert, AnomalyDetector, AnomalyKind, Event, EventJournal, HeapSize, MetricsRegistry,
    PhaseNode, PhaseProfile, Severity, SloPolicy, Snapshot, SpanTimer, Trace, TraceConfig, TraceId,
    TraceSpan, Tracer, Watchdog,
};
pub use xseq_xml::{
    Axis, Corpus, DocId, Document, PathId, PathTable, PatternLabel, SymbolTable, TreePattern,
    ValueMode, XmlError,
};

use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use xseq_schema::WorkloadRecorder;
use xseq_telemetry::{Counter, Gauge, Histogram};

/// Unified error type for the high-level API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// XML parsing failed.
    Xml(XmlError),
    /// Query parsing failed.
    Query(ParseError),
    /// The database has no documents.
    EmptyDatabase,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Xml(e) => write!(f, "xml: {e}"),
            Error::Query(e) => write!(f, "query: {e}"),
            Error::EmptyDatabase => write!(f, "no documents to index"),
        }
    }
}

impl std::error::Error for Error {}

impl From<XmlError> for Error {
    fn from(e: XmlError) -> Self {
        Error::Xml(e)
    }
}

impl From<ParseError> for Error {
    fn from(e: ParseError) -> Self {
        Error::Query(e)
    }
}

/// Which sequencing strategy the database uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sequencing {
    /// Canonical depth-first (ViST's ordering).
    DepthFirst,
    /// The paper's performance-oriented `g_best`: probability-ordered
    /// constraint sequences, with probabilities estimated by sampling.
    Probability,
}

/// Builder for a [`Database`].
#[derive(Debug)]
pub struct DatabaseBuilder {
    sequencing: Sequencing,
    value_mode: ValueMode,
    plan: PlanOptions,
    sample_cap: usize,
    boosts: Vec<(String, f64)>,
    registry: Arc<MetricsRegistry>,
    trace: Option<TraceConfig>,
    spot_check_rate: f64,
    threads: usize,
    shards: usize,
    compact_threshold: Option<usize>,
    memtable_limit: usize,
    tier_ratio: usize,
    background_merge: Option<Duration>,
    profiling: bool,
    event_capacity: usize,
}

/// The build-time configuration a [`Database`] retains so
/// [`Database::compact`] can replay the exact original build pipeline over
/// the surviving documents.
#[derive(Debug, Clone)]
struct BuildConfig {
    sequencing: Sequencing,
    plan: PlanOptions,
    sample_cap: usize,
    boosts: Vec<(String, f64)>,
    compact_threshold: Option<usize>,
    memtable_limit: usize,
    tier_ratio: usize,
}

impl Default for DatabaseBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl DatabaseBuilder {
    /// A builder with the paper's defaults: probability sequencing, exact
    /// value interning.
    pub fn new() -> Self {
        DatabaseBuilder {
            sequencing: Sequencing::Probability,
            value_mode: ValueMode::Intern,
            plan: PlanOptions::default(),
            sample_cap: 0,
            boosts: Vec::new(),
            registry: Arc::new(MetricsRegistry::new()),
            trace: None,
            spot_check_rate: 0.0,
            threads: 1,
            shards: 0,
            compact_threshold: None,
            memtable_limit: xseq_index::DEFAULT_MEMTABLE_LIMIT,
            tier_ratio: xseq_index::DEFAULT_TIER_RATIO,
            background_merge: None,
            profiling: true,
            event_capacity: 256,
        }
    }

    /// Sets how many flight-recorder events [`Database::events`] retains
    /// (default 256, clamped to at least 2).  The journal is always on —
    /// recording an event is a handful of relaxed atomics — so this only
    /// trades memory for history depth.
    pub fn event_capacity(mut self, capacity: usize) -> Self {
        self.event_capacity = capacity;
        self
    }

    /// Enables or disables the workload profiler (on by default): every
    /// executed query is classified into its schema node classes `C` (the
    /// concrete data paths it searched), and per-class frequency, result
    /// cardinality and latency accumulate into
    /// [`Database::workload_profile`] — the observed input for deriving
    /// `w(C)` (Eq. 6) from live traffic instead of operator guesses.
    pub fn profiling(mut self, on: bool) -> Self {
        self.profiling = on;
        self
    }

    /// Enables auto-compaction: whenever the outstanding update volume
    /// (delta sequences + tombstones) reaches `threshold`, the next
    /// [`Database::insert_document`] / [`Database::remove_document`]
    /// triggers a [`Database::compact`] automatically.  Off by default
    /// (compaction is manual).  A `threshold` of 0 is clamped to 1.
    pub fn auto_compact(mut self, threshold: usize) -> Self {
        self.compact_threshold = Some(threshold.max(1));
        self
    }

    /// Caps how many sequences the tiered delta's raw memtable absorbs
    /// before it is cut into a frozen L0 run (default
    /// [`xseq_index::DEFAULT_MEMTABLE_LIMIT`], clamped to ≥ 1).  Smaller
    /// limits bound the youngest segment a query has to rebuild lazily;
    /// larger ones amortize the cut cost over more inserts.
    pub fn memtable_limit(mut self, limit: usize) -> Self {
        self.memtable_limit = limit.max(1);
        self
    }

    /// Sets the LSM size ratio of the tiered delta: when any tier
    /// accumulates this many runs they merge into a single run of the next
    /// tier (default [`xseq_index::DEFAULT_TIER_RATIO`], clamped to ≥ 2).
    /// Merges resolve tombstones as they fold runs together.
    pub fn tier_ratio(mut self, ratio: usize) -> Self {
        self.tier_ratio = ratio.max(2);
        self
    }

    /// Moves tier merges off the foreground update path onto a background
    /// `xseq-exec` worker: a ticker fires every `period`, drains every
    /// shard's due merges, and reports liveness through the
    /// `health.merge.*` watchdog gauges (ticked by the foreground update
    /// path, or manually via [`Database::tick_merge_watchdog`]).  Without
    /// this call merges run inline at the end of each insert.  In-flight
    /// queries are never disturbed either way: they hold an epoch-stamped
    /// snapshot of the segment list, and a merge only swaps the published
    /// list.
    pub fn background_merge(mut self, period: Duration) -> Self {
        self.background_merge = Some(period);
        self
    }

    /// Sets the worker count for ingest (parallel parse, sequencing, and
    /// index freeze) and for [`Database::query_batch`].  1 (the default)
    /// runs everything in place with no thread traffic.
    ///
    /// The shard count follows the thread count unless
    /// [`DatabaseBuilder::shards`] pins it.  At `shards(1)` the built index
    /// is bit-identical to a single-threaded build at any thread count; a
    /// sharded build partitions documents instead, and is answer-identical
    /// (not trie-identical) to the single-shard build.
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n.max(1);
        self
    }

    /// Sets the number of independent index shards (0, the default, follows
    /// the thread count).  Documents are hash-routed to shards by id; each
    /// shard owns its own symbol/path tables, frozen trie, delta segment,
    /// tombstones and query-context pool, so shards share nothing on the
    /// hot path.  Queries fan out across shards and k-way merge their
    /// sorted results — answers, aggregate stats and integrity verdicts
    /// are identical to a single-shard build over the same corpus.
    pub fn shards(mut self, n: usize) -> Self {
        self.shards = n;
        self
    }

    /// The effective shard count: an explicit [`DatabaseBuilder::shards`]
    /// wins, otherwise one shard per worker thread.
    fn resolved_shards(&self) -> usize {
        if self.shards == 0 {
            self.threads.max(1)
        } else {
            self.shards
        }
    }

    /// Enables sampled post-query integrity spot checks: after roughly
    /// `rate` of all queries (deterministic fixed-point sampling, no RNG)
    /// the index's structural invariants are re-verified and the report
    /// lands in [`QueryOutcome::integrity`] — rendered by
    /// [`QueryOutcome::explain`].  Off by default (`rate = 0.0`); the spot
    /// check is the cheap structure-only pass, not the full per-sequence
    /// round-trip of [`Database::verify_integrity`].
    pub fn integrity_spot_check(mut self, rate: f64) -> Self {
        self.spot_check_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Enables per-query tracing with the given policy: every
    /// [`Database::query_xpath_full`] call records a span tree, slow
    /// queries land in [`Database::slow_queries`], and a
    /// [`TraceConfig::sample_rate`] fraction of all queries in
    /// [`Database::recent_traces`].  Without this call queries run
    /// untraced, at zero tracing cost.
    pub fn trace_config(mut self, config: TraceConfig) -> Self {
        self.trace = Some(config);
        self
    }

    /// Shares an external registry (e.g. [`MetricsRegistry::global`])
    /// instead of the private one each builder creates.
    pub fn metrics_registry(mut self, registry: Arc<MetricsRegistry>) -> Self {
        self.registry = registry;
        self
    }

    /// Chooses the sequencing strategy.
    pub fn sequencing(mut self, s: Sequencing) -> Self {
        self.sequencing = s;
        self
    }

    /// Chooses how attribute/text values become designators.
    pub fn value_mode(mut self, m: ValueMode) -> Self {
        self.value_mode = m;
        self
    }

    /// Caps how many documents the probability estimator samples
    /// (0 = all).
    pub fn sample_cap(mut self, cap: usize) -> Self {
        self.sample_cap = cap;
        self
    }

    /// Overrides the planner caps.
    pub fn plan_options(mut self, plan: PlanOptions) -> Self {
        self.plan = plan;
        self
    }

    /// Boosts the sequencing weight `w(C)` of the node addressed by a simple
    /// slash path (e.g. `"/site/item/location"`) — the paper's tunable
    /// mechanism for frequently queried, highly selective elements.
    pub fn boost(mut self, path: &str, weight: f64) -> Self {
        self.boosts.push((path.to_owned(), weight));
        self
    }

    /// Parses and indexes the given XML documents.
    ///
    /// With [`DatabaseBuilder::threads`] above 1, parsing fans out across
    /// the pool: each worker interns into a private clone of the symbol
    /// table, and the per-chunk deltas are absorbed back in document order,
    /// replaying the sequential first-occurrence interning exactly — the
    /// corpus (ids, interners, documents) is identical to a serial parse.
    pub fn build_from_xml<'a>(
        self,
        xmls: impl IntoIterator<Item = &'a str>,
    ) -> Result<Database, Error> {
        if self.resolved_shards() > 1 {
            return self.build_from_xml_sharded(xmls.into_iter().collect());
        }
        let mut corpus = Corpus::new(self.value_mode);
        corpus.attach_parse_histogram(self.registry.histogram("xml.parse"));
        let pool = Pool::new(self.threads);
        if pool.is_sequential() {
            for xml in xmls {
                corpus.parse_and_push(xml)?;
            }
            return self.build_from_corpus(corpus);
        }
        let xmls: Vec<&str> = xmls.into_iter().collect();
        let base_names = corpus.symbols.designator_count();
        let base_values = corpus.symbols.values.len();
        let chunk = pool.chunk_for(xmls.len());
        let chunks = {
            let base = &corpus.symbols;
            // Workers stop at their first parse error; the serial merge
            // below surfaces the earliest error in document order, exactly
            // like the sequential loop.
            pool.map_chunks(&xmls, chunk, |_, slice| {
                let mut local = base.clone();
                let mut docs = Vec::with_capacity(slice.len());
                for xml in slice {
                    let t0 = std::time::Instant::now();
                    match xseq_xml::parse_document(xml, &mut local) {
                        Ok(doc) => docs.push((doc, t0.elapsed())),
                        Err(e) => return (local, docs, Some(e)),
                    }
                }
                (local, docs, None)
            })
        };
        for (local, docs, err) in chunks {
            let remap = corpus.symbols.absorb_delta(&local, base_names, base_values);
            for (mut doc, parse_time) in docs {
                if !remap.is_identity() {
                    doc.remap_symbols(|s| remap.symbol(s));
                }
                if let Some(h) = &corpus.parse_histogram {
                    h.record_duration(parse_time);
                }
                corpus.push(doc);
            }
            if let Some(e) = err {
                return Err(e.into());
            }
        }
        self.build_from_corpus(corpus)
    }

    /// [`DatabaseBuilder::build_from_xml`] for a sharded build: documents
    /// are hash-routed by their would-be id **before** parsing, then each
    /// shard parses its own subset into its own interners on one worker —
    /// the parse phase itself is shared-nothing.
    fn build_from_xml_sharded(self, xmls: Vec<&str>) -> Result<Database, Error> {
        if xmls.is_empty() {
            return Err(Error::EmptyDatabase);
        }
        let nshards = self.resolved_shards();
        let mut shard_xmls: Vec<Vec<&str>> = vec![Vec::new(); nshards];
        let mut doc_map = Vec::with_capacity(xmls.len());
        let mut global_ids: Vec<Vec<DocId>> = vec![Vec::new(); nshards];
        for (gid, xml) in xmls.iter().enumerate() {
            let s = shard_of(gid as DocId, nshards);
            doc_map.push((s as u32, shard_xmls[s].len() as DocId));
            global_ids[s].push(gid as DocId);
            shard_xmls[s].push(xml);
        }
        let pool = Pool::new(self.threads);
        let parse_hist = self.registry.histogram("xml.parse");
        let mode = self.value_mode;
        let tasks: Vec<_> = shard_xmls
            .into_iter()
            .zip(global_ids.iter())
            .map(|(sx, gids)| {
                let hist = parse_hist.clone();
                move || {
                    let mut corpus = Corpus::new(mode);
                    corpus.attach_parse_histogram(hist);
                    for (i, xml) in sx.iter().enumerate() {
                        if let Err(e) = corpus.parse_and_push(xml) {
                            // gids[i] exists for every input: the routing
                            // loop pushed one gid per xml
                            return Err((gids[i], e));
                        }
                    }
                    Ok(corpus)
                }
            })
            .collect();
        let mut corpora = Vec::with_capacity(nshards);
        let mut first_err: Option<(DocId, XmlError)> = None;
        for r in pool.run(tasks) {
            match r {
                Ok(c) => corpora.push(c),
                // Workers stop at their first parse error (their own subset
                // is in document order), so the minimum over shards is the
                // earliest error in global document order — exactly what
                // the sequential loop reports.
                Err((gid, e)) => {
                    if first_err.as_ref().is_none_or(|(g, _)| gid < *g) {
                        first_err = Some((gid, e));
                    }
                }
            }
        }
        if let Some((_, e)) = first_err {
            return Err(e.into());
        }
        self.finish_build(corpora, doc_map, global_ids)
    }

    /// Indexes an already-built corpus.
    ///
    /// With more than one shard, the corpus is split by re-interning each
    /// document into its shard's fresh symbol/path tables (arena order is
    /// parse-encounter order, so stateful re-interning replays a
    /// from-scratch parse of the shard's subset exactly).
    pub fn build_from_corpus(self, corpus: Corpus) -> Result<Database, Error> {
        if corpus.is_empty() {
            return Err(Error::EmptyDatabase);
        }
        let nshards = self.resolved_shards();
        if nshards <= 1 {
            let len = corpus.len();
            let doc_map = (0..len).map(|g| (0u32, g as DocId)).collect();
            let global_ids = vec![(0..len as DocId).collect()];
            return self.finish_build(vec![corpus], doc_map, global_ids);
        }
        let pool = Pool::new(self.threads);
        let (corpora, doc_map, global_ids) = split_corpus(&corpus, nshards, &pool);
        self.finish_build(corpora, doc_map, global_ids)
    }

    /// Builds one index per shard corpus and assembles the [`Database`].
    /// Single-shard builds use the parallel (bit-identical) index build on
    /// the pool; sharded builds run one sequential index build per shard,
    /// fanned out across the pool — the shard-per-core model.
    fn finish_build(
        self,
        corpora: Vec<Corpus>,
        doc_map: Vec<(u32, DocId)>,
        global_ids: Vec<Vec<DocId>>,
    ) -> Result<Database, Error> {
        // Register every pipeline phase up front so a fresh database's
        // snapshot already lists them (at zero), and later inserts through
        // the shard corpora keep recording xml.parse.
        let parse_hist = self.registry.histogram("query.parse");
        let pool_tel = PoolTelemetry::register(&self.registry);
        let config = BuildConfig {
            sequencing: self.sequencing,
            plan: self.plan,
            sample_cap: self.sample_cap,
            boosts: self.boosts,
            compact_threshold: self.compact_threshold,
            memtable_limit: self.memtable_limit,
            tier_ratio: self.tier_ratio,
        };
        let pool = Pool::new(self.threads);
        let nshards = corpora.len();
        let shards: Vec<Shard> = if nshards == 1 {
            let mut corpus = corpora
                .into_iter()
                .next()
                .expect("finish_build callers pass exactly nshards corpora");
            corpus.attach_parse_histogram(self.registry.histogram("xml.parse"));
            let strategy = compute_strategy(&config, &mut corpus);
            let index = XmlIndex::build_parallel(
                &corpus.docs,
                &mut corpus.paths,
                strategy,
                config.plan,
                Some(IndexTelemetry::register(&self.registry)),
                &pool,
            );
            let gids = global_ids
                .into_iter()
                .next()
                .expect("finish_build callers pass exactly nshards id lists");
            vec![Shard::new(corpus, index, gids)]
        } else {
            let registry = &self.registry;
            let config_ref = &config;
            let tasks: Vec<_> = corpora
                .into_iter()
                .enumerate()
                .map(|(s, mut corpus)| {
                    move || {
                        corpus.attach_parse_histogram(registry.histogram("xml.parse"));
                        let strategy = compute_strategy(config_ref, &mut corpus);
                        let index = XmlIndex::build_instrumented(
                            &corpus.docs,
                            &mut corpus.paths,
                            strategy,
                            config_ref.plan,
                            Some(IndexTelemetry::register_shard(registry, s, nshards)),
                        );
                        (corpus, index)
                    }
                })
                .collect();
            pool.run(tasks)
                .into_iter()
                .zip(global_ids)
                .map(|((corpus, index), gids)| Shard::new(corpus, index, gids))
                .collect()
        };
        // Register the update-path phases up front so a fresh database's
        // snapshot already lists them (at zero).
        let update_insert_hist = self.registry.histogram("update.insert");
        let update_remove_hist = self.registry.histogram("update.remove");
        let compact_hist = self.registry.histogram("index.compact");
        // Workload metrics are registered even when profiling is off, so a
        // snapshot always lists the family (at zero).
        let workload_queries = self.registry.counter("workload.queries");
        let workload_unclassified = self.registry.counter("workload.unclassified");
        let workload_classes = self.registry.gauge("workload.classes");
        // The flight recorder is always on; the slow-query threshold arms
        // from the trace config (and is runtime-tunable either way).
        let events = Arc::new(EventJournal::new(self.event_capacity));
        let slow_threshold_ns = self.trace.as_ref().map_or(u64::MAX, |c| {
            c.slow_threshold.as_nanos().min(u64::MAX as u128) as u64
        });
        events.record(
            Event::new("ingest.build")
                .attr("docs", doc_map.len() as u64)
                .attr(
                    "paths",
                    shards
                        .iter()
                        .map(|sh| sh.corpus.paths.len() as u64)
                        .sum::<u64>(),
                )
                .attr("threads", pool.threads() as u64)
                .attr("shards", nshards as u64),
        );
        // Tiered update path: apply the LSM knobs per shard, publish the
        // per-shard delta handles for the merge worker, and (optionally)
        // start the background merge ticker under watchdog supervision.
        let merge_hist = self.registry.histogram("index.merge");
        for sh in &shards {
            sh.index
                .configure_delta(config.memtable_limit, config.tier_ratio);
        }
        let merge_handles: Arc<Mutex<Vec<Arc<TieredDelta>>>> = Arc::new(Mutex::new(
            shards.iter().map(|sh| sh.index.delta_handle()).collect(),
        ));
        let (merge_watchdog, merge_ticker) = match self.background_merge {
            None => (None, None),
            Some(period) => {
                let watchdog = Arc::new(
                    Watchdog::new(self.registry.clone(), MERGE_STALL_TICKS).events(events.clone()),
                );
                let worker = watchdog.register("merge");
                let handles = merge_handles.clone();
                let registry = self.registry.clone();
                let journal = events.clone();
                let hist = merge_hist.clone();
                let ticker = Ticker::spawn_named("xseq-merge", period, move || {
                    worker.set_active(true);
                    // Clone the handle list out and drop the guard before
                    // merging: compaction swaps handles under this lock and
                    // must never wait on a long merge.
                    let deltas: Vec<Arc<TieredDelta>> = {
                        let guard = handles.lock().unwrap_or_else(|p| p.into_inner());
                        guard.clone()
                    };
                    let nshards = deltas.len();
                    let mut merges = 0;
                    for (s, delta) in deltas.iter().enumerate() {
                        merges += drain_shard_merges(s, nshards, delta, &registry, &journal, &hist);
                        worker.beat();
                    }
                    if merges > 0 {
                        refresh_aggregate_gauges(&deltas, &registry);
                    }
                    worker.set_active(false);
                });
                (Some(watchdog), Some(ticker))
            }
        };
        Ok(Database {
            shards,
            doc_map,
            workload: self.profiling.then(WorkloadRecorder::new),
            workload_queries,
            workload_unclassified,
            workload_classes,
            registry: self.registry,
            parse_hist,
            pool_tel,
            tracer: self.trace.map(|c| Arc::new(Tracer::new(c))),
            // 32.32 fixed point: `rate` of all queries fire the spot check.
            spot_step: (self.spot_check_rate * (1u64 << 32) as f64) as u64,
            spot_accum: AtomicU64::new(0),
            pool,
            config,
            update_insert_hist,
            update_remove_hist,
            compact_hist,
            merge_hist,
            merge_handles,
            merge_ticker,
            merge_watchdog,
            events,
            slow_threshold_ns: AtomicU64::new(slow_threshold_ns),
        })
    }
}

/// Watchdog patience for the background merge worker: flagged stalled
/// after this many foreground ticks with a frozen heartbeat while active.
const MERGE_STALL_TICKS: u64 = 3;

/// Drains every size-ratio-triggered merge currently due in one shard's
/// tiered delta, recording each as an `index.merge` latency sample
/// bracketed by `compact.tier.start` / `compact.tier.finish`
/// flight-recorder events, then refreshes the shard's occupancy gauges.
/// Returns the number of merges performed.  Shared by the background
/// ticker and the inline (foreground) drain in [`Database::insert_document`].
fn drain_shard_merges(
    s: usize,
    nshards: usize,
    delta: &TieredDelta,
    registry: &MetricsRegistry,
    events: &EventJournal,
    hist: &Arc<Histogram>,
) -> usize {
    let mut merges = 0;
    while delta.merge_due() {
        events.record(
            Event::new("compact.tier.start")
                .severity(Severity::Debug)
                .attr("shard", s as u64),
        );
        let t0 = Instant::now();
        let outcome = delta.maybe_merge();
        let total_ns = t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        // None: another thread merged (or cleared) first — `merge_due` is
        // advisory.  Record the abort and stop; the winner owns the drain.
        let Some(out) = outcome else {
            events.record(
                Event::new("compact.tier.finish")
                    .severity(Severity::Debug)
                    .attr("shard", s as u64)
                    .attr("runs", 0u64),
            );
            break;
        };
        hist.record(total_ns);
        merges += 1;
        events.record(
            Event::new("compact.tier.finish")
                .severity(Severity::Debug)
                .attr("shard", s as u64)
                .attr("tier", u64::from(out.tier))
                .attr("runs", out.runs_merged as u64)
                .attr("docs", out.docs_in as u64)
                .attr("dropped", out.docs_dropped as u64)
                .attr("total_ns", total_ns),
        );
    }
    if merges > 0 {
        let seqs = delta.sequence_count() as i64;
        let runs = delta.run_count() as i64;
        if nshards <= 1 {
            registry.gauge("index.delta.sequences").set(seqs);
            registry.gauge("index.delta.runs").set(runs);
        } else {
            registry
                .gauge(&format!("index.shard{s}.delta.sequences"))
                .set(seqs);
            registry
                .gauge(&format!("index.shard{s}.delta.runs"))
                .set(runs);
        }
    }
    merges
}

/// Re-derives the aggregate `index.delta.*` / `index.tombstones` gauges
/// from the per-shard delta handles — the multi-shard convention: shards
/// own their `index.shardN.*` family, whoever mutates maintains the sums.
/// A no-op with one shard (the plain gauges are the shard's own).
fn refresh_aggregate_gauges(deltas: &[Arc<TieredDelta>], registry: &MetricsRegistry) {
    if deltas.len() <= 1 {
        return;
    }
    let mut seqs = 0usize;
    let mut runs = 0usize;
    let mut tombs = 0usize;
    for d in deltas.iter() {
        seqs += d.sequence_count();
        runs += d.run_count();
        tombs += d.tombstones().len();
    }
    registry.gauge("index.delta.sequences").set(seqs as i64);
    registry.gauge("index.delta.runs").set(runs as i64);
    registry.gauge("index.tombstones").set(tombs as i64);
}

/// Derives the sequencing strategy the way the original build did — shared
/// by [`DatabaseBuilder::build_from_corpus`] and [`Database::compact`], so
/// compaction replays the identical strategy computation over the surviving
/// documents.
fn compute_strategy(config: &BuildConfig, corpus: &mut Corpus) -> Strategy {
    match config.sequencing {
        Sequencing::DepthFirst => Strategy::DepthFirst,
        Sequencing::Probability => {
            let model =
                ProbabilityModel::estimate(&corpus.docs, &mut corpus.paths, config.sample_cap);
            let mut weights = WeightMap::default();
            for (path, w) in &config.boosts {
                if let Some(p) = resolve_simple_path(path, &corpus.symbols, &corpus.paths) {
                    weights.set(p, *w);
                }
            }
            Strategy::Probability(model.priorities(&corpus.paths, &weights))
        }
    }
}

/// Routes a global document id to its shard: the splitmix64 finalizer over
/// the id, reduced mod the shard count — uniform, stateless and
/// deterministic, so the same corpus always shards the same way.
fn shard_of(global: DocId, nshards: usize) -> usize {
    if nshards <= 1 {
        return 0;
    }
    let mut z = (global as u64).wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    // PANIC-FREE: nshards > 1 here, so the modulus is never zero
    ((z ^ (z >> 31)) % nshards as u64) as usize
}

/// Re-interns one symbol from `old`'s tables into `fresh`'s — the shared
/// primitive behind corpus splitting and compaction.  Interned values
/// resolve and re-intern; hashed value ids are stateless (`h(s) mod
/// range`), so the original id is already what a fresh parse would mint.
fn reintern_symbol(s: xml::Symbol, old: &SymbolTable, fresh: &mut SymbolTable) -> xml::Symbol {
    if let Some(d) = s.as_elem() {
        xml::Symbol::elem(fresh.designator(old.name(d)))
    } else {
        let v = s.as_value().expect("a symbol is an element or a value");
        match old.values.resolve(v) {
            Some(text) => xml::Symbol::value(fresh.values.intern(text)),
            None => s,
        }
    }
}

/// Splits a corpus into per-shard corpora by hash-routing each document and
/// re-interning it into its shard's fresh tables (arena order = parse
/// encounter order, so the shard corpus is bit-identical to parsing the
/// subset from scratch).  One worker per shard; every worker scans the
/// routing table and claims only its own documents, so the split itself is
/// shared-nothing.  Returns the shard corpora, the global→(shard, local)
/// map, and the per-shard local→global lists.
#[allow(clippy::type_complexity)]
fn split_corpus(
    corpus: &Corpus,
    nshards: usize,
    pool: &Pool,
) -> (Vec<Corpus>, Vec<(u32, DocId)>, Vec<Vec<DocId>>) {
    let mode = corpus.symbols.values.mode();
    let routes: Vec<usize> = (0..corpus.docs.len())
        .map(|g| shard_of(g as DocId, nshards))
        .collect();
    let mut doc_map = Vec::with_capacity(corpus.docs.len());
    let mut counts = vec![0u32; nshards];
    for &s in &routes {
        doc_map.push((s as u32, counts[s] as DocId));
        counts[s] += 1;
    }
    let routes = &routes;
    let tasks: Vec<_> = (0..nshards)
        .map(|s| {
            move || {
                let mut shard = Corpus::new(mode);
                let mut gids = Vec::new();
                for (gid, doc) in corpus.docs.iter().enumerate() {
                    if routes[gid] != s {
                        continue;
                    }
                    let mut doc = doc.clone();
                    doc.remap_symbols(|sym| {
                        reintern_symbol(sym, &corpus.symbols, &mut shard.symbols)
                    });
                    shard.push(doc);
                    gids.push(gid as DocId);
                }
                (shard, gids)
            }
        })
        .collect();
    let (corpora, global_ids) = pool.run(tasks).into_iter().unzip();
    (corpora, doc_map, global_ids)
}

/// Re-resolves a tree pattern built against `from`'s symbol tables into
/// `to`'s id space.  `None` when a named element or interned value is
/// absent from `to` — the pattern is provably empty for that shard (the
/// same short-circuit the per-shard read-only query parse uses).
fn rebind_pattern(p: &TreePattern, from: &SymbolTable, to: &SymbolTable) -> Option<TreePattern> {
    let rebind = |label: PatternLabel| -> Option<PatternLabel> {
        match label {
            PatternLabel::Elem(d) => Some(PatternLabel::Elem(to.lookup_designator(from.name(d))?)),
            PatternLabel::AnyElem => Some(PatternLabel::AnyElem),
            PatternLabel::Value(v) => match from.values.resolve(v) {
                Some(text) => Some(PatternLabel::Value(to.values.lookup(text)?)),
                // Hashed mode: value ids are stateless, every table agrees.
                None => Some(PatternLabel::Value(v)),
            },
        }
    };
    let root = p.root_id();
    let mut out = TreePattern::with_root_axis(rebind(p.label(root))?, p.axis(root));
    // `add` appends children after their parents, so a pass in id order
    // sees every parent first and reproduces the original node ids.
    for n in p.node_ids().skip(1) {
        let parent = p
            .parent(n)
            .expect("every non-root pattern node has a parent");
        out.add(parent, p.axis(n), rebind(p.label(n))?);
    }
    Some(out)
}

/// One independent index shard: its own corpus (symbol/path tables and
/// documents, locally id'd), its own two-segment index, the local→global
/// id map, and a small pool of reusable query contexts.  Shards share
/// nothing on the query hot path.
#[derive(Debug)]
struct Shard {
    corpus: Corpus,
    index: XmlIndex,
    /// Local doc id → global doc id, ascending (locals are dense and
    /// assigned in global-id order, so mapping a sorted local result list
    /// keeps it sorted).
    global_ids: Vec<DocId>,
    /// Reusable [`QueryContext`]s for scatter workers; the lock is a leaf,
    /// held only for a pop/push and never across a search.
    ctx_pool: Mutex<Vec<QueryContext>>,
}

/// Cap on pooled contexts per shard — enough for every plausible worker
/// count without hoarding scratch memory.
const CTX_POOL_CAP: usize = 16;

impl Shard {
    fn new(corpus: Corpus, index: XmlIndex, global_ids: Vec<DocId>) -> Self {
        Shard {
            corpus,
            index,
            global_ids,
            ctx_pool: Mutex::new(Vec::new()),
        }
    }

    /// Checks a context out of the shard's pool (fresh when empty or the
    /// lock is poisoned); the guard drops before any search work.
    fn checkout_ctx(&self) -> QueryContext {
        self.ctx_pool
            .lock()
            .ok()
            .and_then(|mut pool| pool.pop())
            .unwrap_or_default()
    }

    /// Returns a context to the pool for the next scatter worker.
    fn checkin_ctx(&self, ctx: QueryContext) {
        if let Ok(mut pool) = self.ctx_pool.lock() {
            if pool.len() < CTX_POOL_CAP {
                pool.push(ctx);
            }
        }
    }

    /// Rewrites a sorted list of this shard's local doc ids to global ids
    /// (ascending map, so the list stays sorted).
    fn globalize(&self, docs: &mut [DocId]) {
        for d in docs {
            // PANIC-FREE: the shard's trie stores only local ids this shard
            // minted, and global_ids holds one entry per local id
            *d = self.global_ids[*d as usize];
        }
    }

    /// Outstanding delta sequences + tombstones in this shard.
    fn pending_updates(&self) -> usize {
        self.index.pending_updates()
    }
}

/// Merges sorted, disjoint per-shard global doc-id lists into one sorted
/// list — the gather half of a scatter query.  Shards partition the id
/// space, so there are no duplicates to collapse.
fn kway_merge(lists: Vec<Vec<DocId>>) -> Vec<DocId> {
    if lists.len() == 1 {
        // PANIC-FREE: the length was just checked
        return lists.into_iter().next().expect("one list");
    }
    let total = lists.iter().map(Vec::len).sum();
    let mut heads = vec![0usize; lists.len()];
    let mut out = Vec::with_capacity(total);
    loop {
        let mut best: Option<(usize, DocId)> = None;
        for (i, list) in lists.iter().enumerate() {
            // PANIC-FREE: heads and lists are the same length by
            // construction, and get() bounds-checks the head itself
            if let Some(&d) = list.get(heads[i]) {
                if best.is_none_or(|(_, bd)| d < bd) {
                    best = Some((i, d));
                }
            }
        }
        let Some((i, d)) = best else {
            return out;
        };
        // PANIC-FREE: i comes from the enumerate above
        heads[i] += 1;
        out.push(d);
    }
}

/// Folds one shard's outcome counters into the gathered aggregate: stats
/// and phase times sum, per-variant descents append, classes union (their
/// ids live in per-shard path spaces).  Docs are merged separately by
/// [`kway_merge`].
fn absorb_shard_outcome(acc: &mut QueryOutcome, shard: QueryOutcome) {
    acc.stats.instantiations += shard.stats.instantiations;
    acc.stats.variants += shard.stats.variants;
    acc.stats.search.candidates += shard.stats.search.candidates;
    acc.stats.search.cover_rejections += shard.stats.search.cover_rejections;
    acc.stats.search.completions += shard.stats.search.completions;
    acc.stats.search.link_probes += shard.stats.search.link_probes;
    acc.stats.search.scratch_reuses += shard.stats.search.scratch_reuses;
    acc.stats.plan_ns += shard.stats.plan_ns;
    acc.stats.encode_ns += shard.stats.encode_ns;
    acc.stats.search_ns += shard.stats.search_ns;
    acc.stats.pool_hits += shard.stats.pool_hits;
    acc.stats.pool_misses += shard.stats.pool_misses;
    acc.classes.extend(shard.classes);
    acc.descents.extend(shard.descents);
}

/// Renders the diagnostics bundle's `heap.json`: whole-database byte
/// attribution plus one entry per shard.
fn heap_json(stats: &DatabaseStats) -> String {
    use fmt::Write as _;
    let mut out = format!(
        "{{\"corpus_bytes\":{},\"index_bytes\":{},\"total_bytes\":{},\"shards\":[",
        stats.memory.corpus_bytes,
        stats.memory.index_bytes,
        stats.memory.total_bytes()
    );
    for (i, sh) in stats.shards.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"shard\":{},\"docs\":{},\"corpus_bytes\":{},\"index_bytes\":{},\"total_bytes\":{}}}",
            i,
            sh.docs,
            sh.memory.corpus_bytes,
            sh.memory.index_bytes,
            sh.memory.total_bytes()
        );
    }
    out.push_str("]}");
    out
}

/// Serializes traces as one JSON array of Chrome trace-event objects.
fn traces_json(traces: &[Arc<Trace>]) -> String {
    let mut out = String::from("[");
    for (i, t) in traces.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&xseq_telemetry::to_chrome_json(t));
    }
    out.push(']');
    out
}

/// Resolves `/a/b/c` to an interned path id, if every step exists.
fn resolve_simple_path(path: &str, symbols: &SymbolTable, paths: &PathTable) -> Option<PathId> {
    let mut cur = PathId::ROOT;
    for step in path.split('/').filter(|s| !s.is_empty()) {
        let d = symbols.lookup_designator(step)?;
        cur = paths.child(cur, xseq_xml::Symbol::elem(d))?;
    }
    Some(cur)
}

/// A corpus plus its constraint-sequence index: the top-level handle.
///
/// Since the shard-per-core refactor a database is **N independent
/// shards** ([`DatabaseBuilder::shards`], default = thread count):
/// documents are hash-routed to shards by id, each shard owns its own
/// symbol/path tables, frozen trie, delta segment, tombstones and query
/// scratch, and queries scatter across shards and k-way merge their
/// sorted results.  Global doc ids stay dense; a global→(shard, local)
/// map preserves the single-shard numbering exactly.
///
/// A built database is `Send + Sync` and all query entry points take
/// `&self`: queries never intern (symbols absent from a shard's tables
/// prove the query empty *for that shard*), so any number of threads may
/// share one database — [`Database::query_batch`] does exactly that on
/// the builder's pool.  Mutation ([`Database::insert_xml`]) still
/// requires `&mut self`.
#[derive(Debug)]
pub struct Database {
    /// The index shards, each with its own corpus slice and interners.
    shards: Vec<Shard>,
    /// Global doc id → (shard, local doc id).  Tombstoned ids keep their
    /// entries until a compaction drops them.
    doc_map: Vec<(u32, DocId)>,
    /// The live workload profiler (`None` when
    /// [`DatabaseBuilder::profiling`] is off): per schema node class,
    /// query frequency, result cardinality and latency.
    workload: Option<WorkloadRecorder>,
    /// `workload.queries` — profiled queries.
    workload_queries: Arc<Counter>,
    /// `workload.unclassified` — profiled queries with no searched class.
    workload_unclassified: Arc<Counter>,
    /// `workload.classes` — distinct classes seen so far.
    workload_classes: Arc<Gauge>,
    registry: Arc<MetricsRegistry>,
    parse_hist: Arc<Histogram>,
    /// Registry handles for `storage.pool.*` — read around each traced
    /// query to attach pool-delta attributes (metric deltas) to its trace.
    pool_tel: PoolTelemetry,
    tracer: Option<Arc<Tracer>>,
    /// Per-query increment of the 32.32 fixed-point sampling accumulator;
    /// 0 disables the spot check entirely.
    spot_step: u64,
    spot_accum: AtomicU64,
    /// Worker pool for batch queries (and the ingest that built this
    /// database), sized by [`DatabaseBuilder::threads`].
    pool: Pool,
    /// Retained build configuration; [`Database::compact`] replays it.
    config: BuildConfig,
    /// `update.insert` — per-document delta-insert latency.
    update_insert_hist: Arc<Histogram>,
    /// `update.remove` — tombstone-recording latency.
    update_remove_hist: Arc<Histogram>,
    /// `index.compact` — full compaction latency.
    compact_hist: Arc<Histogram>,
    /// `index.merge` — per-tier-merge latency (its own family, so merge
    /// time never double-counts under `index.compact`).
    merge_hist: Arc<Histogram>,
    /// Per-shard tiered-delta handles shared with the background merge
    /// worker; compaction swaps a rebuilt shard's handle in under the lock.
    merge_handles: Arc<Mutex<Vec<Arc<TieredDelta>>>>,
    /// The background merge worker, when the builder enabled
    /// [`DatabaseBuilder::background_merge`]; dropping the database stops
    /// and joins it.
    merge_ticker: Option<Ticker>,
    /// Liveness monitor over the background merge worker
    /// (`health.merge.*`), ticked by the foreground update path.
    merge_watchdog: Option<Arc<Watchdog>>,
    /// The flight recorder: a bounded journal of severity-levelled
    /// lifecycle events (always on).
    events: Arc<EventJournal>,
    /// Queries at least this slow record a `query.slow` event;
    /// `u64::MAX` disables the check.  Runtime-tunable through
    /// [`Database::set_slow_query_threshold`].
    slow_threshold_ns: AtomicU64,
}

/// What one [`Database::compact`] did: sizes before/after, and the doc-id
/// renumbering it applied.
///
/// Compaction renumbers documents densely (tombstoned ids disappear, the
/// survivors close ranks in order) — exactly the ids a from-scratch build
/// over the surviving documents would assign.  `remap[old]` gives the new
/// id of old document `old`, or `None` if it was tombstoned.
#[derive(Debug, Clone)]
pub struct CompactionReport {
    /// Documents (frozen + delta) before compaction.
    pub docs_before: usize,
    /// Surviving documents after compaction.
    pub docs_after: usize,
    /// Tombstones dropped for good.
    pub tombstones_dropped: usize,
    /// Delta sequences folded into the frozen segment.
    pub delta_merged: usize,
    /// Old id → new id (`None` for tombstoned documents).
    pub remap: Vec<Option<DocId>>,
}

/// The continuous profiler's phase tree ([`Database::phase_profile`]):
/// every span-timer histogram the pipeline maintains, attributed to a
/// stable two-frame stack (`area;phase`).  Attribution is per phase, not a
/// strict partition — a compaction replays ingest phases, so nested time
/// appears under both stacks.
pub const PHASE_TREE: &[PhaseNode] = &[
    PhaseNode {
        metric: "xml.parse",
        stack: &["ingest", "xml.parse"],
    },
    PhaseNode {
        metric: "sequence.encode",
        stack: &["ingest", "sequence.encode"],
    },
    PhaseNode {
        metric: "query.parse",
        stack: &["query", "query.parse"],
    },
    PhaseNode {
        metric: "index.plan",
        stack: &["query", "index.plan"],
    },
    PhaseNode {
        metric: "index.search",
        stack: &["query", "index.search"],
    },
    PhaseNode {
        metric: "update.insert",
        stack: &["update", "update.insert"],
    },
    PhaseNode {
        metric: "update.remove",
        stack: &["update", "update.remove"],
    },
    PhaseNode {
        metric: "index.merge",
        stack: &["update", "index.merge"],
    },
    PhaseNode {
        metric: "index.compact",
        stack: &["update", "index.compact"],
    },
];

/// What [`Database::diagnostics`] wrote: the bundle directory and every
/// artifact file name inside it, in write order (`manifest.json` last).
#[derive(Debug, Clone)]
pub struct DiagnosticsReport {
    /// The bundle directory.
    pub dir: PathBuf,
    /// File names written inside [`DiagnosticsReport::dir`].
    pub files: Vec<&'static str>,
}

/// Modelled heap attribution of one database ([`Database::stats`]): bytes
/// per component under the [`HeapSize`] accounting rules (capacity-based,
/// validated against a counting allocator within 5%).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoryStats {
    /// Corpus heap: interners (names, values, paths) plus document arenas.
    pub corpus_bytes: usize,
    /// Index heap: both trie segments, tombstones, the wildcard dictionary
    /// and the strategy's priority tables.
    pub index_bytes: usize,
}

impl MemoryStats {
    /// Total modelled footprint — the `memory.total.bytes` gauge.
    pub fn total_bytes(&self) -> usize {
        self.corpus_bytes + self.index_bytes
    }
}

/// One shard's slice of a [`DatabaseStats`] report.
#[derive(Debug, Clone)]
pub struct ShardStats {
    /// Documents routed to this shard (tombstoned ids included until
    /// compaction).
    pub docs: usize,
    /// Paths interned by this shard's own table, counting ε.
    pub paths: usize,
    /// The shard's index shape report.
    pub index: xseq_index::IndexStats,
    /// The shard's modelled heap attribution.
    pub memory: MemoryStats,
}

/// The database-wide observability report of [`Database::stats`].
#[derive(Debug, Clone)]
pub struct DatabaseStats {
    /// Indexed documents (tombstoned ids included until compaction).
    pub docs: usize,
    /// Interned designator paths, counting ε — summed over shard tables,
    /// so shared prefixes count once per shard that interned them.
    pub paths: usize,
    /// Deep index shape statistics (frozen ∪ delta walk), aggregated over
    /// every shard.
    pub index: xseq_index::IndexStats,
    /// Modelled heap attribution per component, summed over shards.
    pub memory: MemoryStats,
    /// Cumulative `storage.pool.*` counters from the registry.
    pub pool: PoolStats,
    /// Snapshot of the workload profiler (empty when profiling is off).
    pub workload: WorkloadProfile,
    /// Per-shard breakdown (one entry for a single-shard database).
    pub shards: Vec<ShardStats>,
}

impl DatabaseStats {
    /// Renders the full report as an indented text block.
    pub fn render(&self) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "database: {} docs | {} paths | {} shard(s)",
            self.docs,
            self.paths,
            self.shards.len()
        );
        out.push_str(&self.index.render());
        if self.shards.len() > 1 {
            for (i, sh) in self.shards.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "  shard {i}: {} docs | {} paths | frozen {} seq | delta {} seq | tombstones {} | {} B",
                    sh.docs,
                    sh.paths,
                    sh.index.frozen.sequences,
                    sh.index.delta.sequences,
                    sh.index.tombstones,
                    sh.memory.total_bytes()
                );
            }
        }
        let _ = writeln!(
            out,
            "  memory: corpus {} B + index {} B = {} B",
            self.memory.corpus_bytes,
            self.memory.index_bytes,
            self.memory.total_bytes()
        );
        let _ = writeln!(
            out,
            "  pool: {} hits, {} misses, {} evictions",
            self.pool.hits, self.pool.misses, self.pool.evictions
        );
        let _ = writeln!(
            out,
            "  workload: {} queries over {} classes ({} unclassified)",
            self.workload.queries(),
            self.workload.len(),
            self.workload.unclassified()
        );
        out
    }
}

// Compile-time guarantee behind the concurrency model: one frozen database
// is shareable across threads as-is.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Database>();
};

impl Database {
    /// Answers an XPath-subset query with document ids.
    pub fn query_xpath(&self, expr: &str) -> Result<Vec<DocId>, Error> {
        Ok(self.query_xpath_full(expr)?.docs)
    }

    /// Like [`Database::query_xpath`] but returns the work counters too —
    /// and, when the database was built with
    /// [`DatabaseBuilder::trace_config`], the query's span tree in
    /// [`QueryOutcome::trace`].
    pub fn query_xpath_full(&self, expr: &str) -> Result<QueryOutcome, Error> {
        self.query_xpath_ctx(expr, &mut QueryContext::new(), true)
    }

    /// The first shard, for single-shard accessors.
    fn shard0(&self) -> &Shard {
        // PANIC-FREE: builders reject empty corpora, so a database always
        // holds at least one shard
        &self.shards[0]
    }

    /// One query against a caller-owned [`QueryContext`] (scratch reuse);
    /// the batch path runs one context per worker.  When profiling is on,
    /// the executed query lands in the workload profiler: its classes are
    /// the concrete data paths the search descended
    /// ([`QueryOutcome::classes`]), its latency the wall time of the whole
    /// parse → plan → search pipeline.
    fn query_xpath_ctx(
        &self,
        expr: &str,
        ctx: &mut QueryContext,
        scatter: bool,
    ) -> Result<QueryOutcome, Error> {
        // ORDERING: config — advisory read; no memory is published through it.
        let slow_ns = self.slow_threshold_ns.load(Ordering::Relaxed);
        if self.workload.is_none() && slow_ns == u64::MAX {
            return self.query_xpath_inner(expr, ctx, scatter);
        }
        let t0 = Instant::now();
        let out = self.query_xpath_inner(expr, ctx, scatter)?;
        let elapsed_ns = t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        if let Some(recorder) = &self.workload {
            recorder.record(&out.classes, out.docs.len() as u64, elapsed_ns);
            self.workload_queries.inc();
            if out.classes.is_empty() {
                self.workload_unclassified.inc();
            }
            self.workload_classes.set(recorder.class_count() as i64);
        }
        if elapsed_ns >= slow_ns {
            self.events.record(
                Event::new("query.slow")
                    .severity(Severity::Warn)
                    .message(expr)
                    .attr("total_ns", elapsed_ns)
                    .attr("docs", out.docs.len() as u64),
            );
        }
        Ok(out)
    }

    /// [`Database::query_xpath_ctx`] without the profiling wrapper.
    ///
    /// `scatter` allows a multi-shard query to fan out across the worker
    /// pool; batch workers pass `false` (their parallelism already comes
    /// from the batch level, and nested fan-out would oversubscribe).
    fn query_xpath_inner(
        &self,
        expr: &str,
        ctx: &mut QueryContext,
        scatter: bool,
    ) -> Result<QueryOutcome, Error> {
        if self.shards.len() > 1 {
            return self.query_sharded(expr, scatter);
        }
        let sh = self.shard0();
        let Some(tracer) = self.tracer.clone() else {
            let pattern = xseq_query::parse_xpath_readonly_instrumented(
                expr,
                &sh.corpus.symbols,
                &self.parse_hist,
            )?;
            // None: the expression names a symbol no indexed document
            // contains — provably empty, no descent needed.
            let mut out = match &pattern {
                Some(p) => sh.index.query_with(p, &sh.corpus.paths, ctx),
                None => QueryOutcome::default(),
            };
            self.maybe_spot_check(&mut out);
            return Ok(out);
        };
        let mut active = tracer.begin(expr);
        let pool0 = (self.pool_tel.hits.get(), self.pool_tel.misses.get());
        let pattern = match xseq_query::parse_xpath_readonly_traced(
            expr,
            &sh.corpus.symbols,
            &self.parse_hist,
            &mut active,
        ) {
            Ok(p) => p,
            Err(e) => {
                // a failed parse still finishes its trace: the time was
                // spent, and a slow failure is still a slow query
                active.root_attr("error", e.to_string());
                tracer.finish(active);
                return Err(e.into());
            }
        };
        let mut out = match &pattern {
            Some(p) => sh.index.query_traced(p, &sh.corpus.paths, &mut active),
            None => QueryOutcome::default(),
        };
        out.stats.pool_hits = self.pool_tel.hits.get().saturating_sub(pool0.0);
        out.stats.pool_misses = self.pool_tel.misses.get().saturating_sub(pool0.1);
        active.root_attr("docs", out.docs.len() as u64);
        active.root_attr("candidates", out.stats.search.candidates);
        active.root_attr("pool_hits", out.stats.pool_hits);
        active.root_attr("pool_misses", out.stats.pool_misses);
        self.maybe_spot_check(&mut out);
        if let Some(report) = &out.integrity {
            active.root_attr("integrity", report.summary());
        }
        out.trace = Some(tracer.finish(active));
        Ok(out)
    }

    /// One shard's share of a scatter query: the expression re-resolves
    /// against the shard's own interners (an absent symbol proves the
    /// shard empty — `Ok(None)`, no descent), the shard's index answers
    /// with local ids, and the result list rewrites to global ids.
    fn query_shard(&self, sh: &Shard, expr: &str) -> Result<Option<QueryOutcome>, ParseError> {
        let Some(pattern) = xseq_query::parse_xpath_readonly_instrumented(
            expr,
            &sh.corpus.symbols,
            &self.parse_hist,
        )?
        else {
            return Ok(None);
        };
        let mut ctx = sh.checkout_ctx();
        let mut out = sh.index.query_with(&pattern, &sh.corpus.paths, &mut ctx);
        sh.checkin_ctx(ctx);
        sh.globalize(&mut out.docs);
        Ok(Some(out))
    }

    /// A query over every shard: scatter (on the pool when `scatter` is
    /// set and the pool has workers, else a sequential shard loop), then
    /// gather — sorted per-shard doc lists k-way merge, counters sum.
    fn query_sharded(&self, expr: &str, scatter: bool) -> Result<QueryOutcome, Error> {
        if let Some(tracer) = self.tracer.clone() {
            return self.query_sharded_traced(expr, &tracer);
        }
        let per_shard: Vec<Result<Option<QueryOutcome>, ParseError>> =
            if scatter && !self.pool.is_sequential() {
                let tasks: Vec<_> = self
                    .shards
                    .iter()
                    .map(|sh| move || self.query_shard(sh, expr))
                    .collect();
                self.pool.run(tasks)
            } else {
                self.shards
                    .iter()
                    .map(|sh| self.query_shard(sh, expr))
                    .collect()
            };
        let mut out = QueryOutcome::default();
        let mut lists = Vec::with_capacity(per_shard.len());
        for r in per_shard {
            if let Some(mut shard_out) = r? {
                lists.push(std::mem::take(&mut shard_out.docs));
                absorb_shard_outcome(&mut out, shard_out);
            }
        }
        out.docs = kway_merge(lists);
        out.classes.sort_unstable();
        out.classes.dedup();
        self.maybe_spot_check(&mut out);
        Ok(out)
    }

    /// The traced variant of [`Database::query_sharded`]: shards run
    /// sequentially under one span tree (per-shard parse and descent spans
    /// nest below the root, which carries the shard count).
    fn query_sharded_traced(
        &self,
        expr: &str,
        tracer: &Arc<Tracer>,
    ) -> Result<QueryOutcome, Error> {
        let mut active = tracer.begin(expr);
        active.root_attr("shards", self.shards.len() as u64);
        let pool0 = (self.pool_tel.hits.get(), self.pool_tel.misses.get());
        let mut out = QueryOutcome::default();
        let mut lists = Vec::with_capacity(self.shards.len());
        for sh in &self.shards {
            let pattern = match xseq_query::parse_xpath_readonly_traced(
                expr,
                &sh.corpus.symbols,
                &self.parse_hist,
                &mut active,
            ) {
                Ok(p) => p,
                Err(e) => {
                    // a failed parse still finishes its trace: the time was
                    // spent, and a slow failure is still a slow query
                    active.root_attr("error", e.to_string());
                    tracer.finish(active);
                    return Err(e.into());
                }
            };
            if let Some(p) = &pattern {
                let mut shard_out = sh.index.query_traced(p, &sh.corpus.paths, &mut active);
                sh.globalize(&mut shard_out.docs);
                lists.push(std::mem::take(&mut shard_out.docs));
                absorb_shard_outcome(&mut out, shard_out);
            }
        }
        out.docs = kway_merge(lists);
        out.classes.sort_unstable();
        out.classes.dedup();
        out.stats.pool_hits = self.pool_tel.hits.get().saturating_sub(pool0.0);
        out.stats.pool_misses = self.pool_tel.misses.get().saturating_sub(pool0.1);
        active.root_attr("docs", out.docs.len() as u64);
        active.root_attr("candidates", out.stats.search.candidates);
        active.root_attr("pool_hits", out.stats.pool_hits);
        active.root_attr("pool_misses", out.stats.pool_misses);
        self.maybe_spot_check(&mut out);
        if let Some(report) = &out.integrity {
            active.root_attr("integrity", report.summary());
        }
        out.trace = Some(tracer.finish(active));
        Ok(out)
    }

    /// Answers many XPath queries on the builder's worker pool, returning
    /// one result per expression in input order.  Equivalent to (and, on a
    /// sequential pool, literally) a serial `query_xpath` loop; workers
    /// share the database read-only and reuse one [`QueryContext`] per
    /// chunk.  On a sharded database each worker walks the shards
    /// sequentially — the parallelism already comes from the batch level.
    pub fn query_batch(&self, exprs: &[&str]) -> Vec<Result<Vec<DocId>, Error>> {
        let chunk = self.pool.chunk_for(exprs.len());
        self.pool
            .map_chunks(exprs, chunk, |_, slice| {
                let mut ctx = QueryContext::new();
                slice
                    .iter()
                    .map(|expr| Ok(self.query_xpath_ctx(expr, &mut ctx, false)?.docs))
                    .collect::<Vec<_>>()
            })
            .into_iter()
            .flatten()
            .collect()
    }

    /// Fires the sampled post-query integrity spot check when the
    /// fixed-point accumulator crosses an integer boundary (exactly `rate`
    /// of all queries, deterministically — concurrent queries each claim a
    /// disjoint accumulator window, so the rate holds under sharing too).
    fn maybe_spot_check(&self, out: &mut QueryOutcome) {
        if self.spot_step == 0 {
            return;
        }
        // ORDERING: sample — a pure sampling accumulator; each query claims
        // its window with the RMW alone and no other memory is published
        // through it.
        let prev = self.spot_accum.fetch_add(self.spot_step, Ordering::Relaxed);
        if (prev.wrapping_add(self.spot_step) >> 32) != (prev >> 32) {
            let report = self.verify_structure_all();
            self.record_integrity_violation(&report);
            out.integrity = Some(report);
        }
    }

    /// The cheap structure-only verification pass over every shard, merged
    /// into one report (the spot check's work).
    fn verify_structure_all(&self) -> IntegrityReport {
        let mut report = IntegrityReport::default();
        for sh in &self.shards {
            report.merge(sh.index.verify_structure());
        }
        report
    }

    /// Flight-records an `integrity.violation` event when a verification
    /// report is not clean (shared by the spot check and the full pass).
    fn record_integrity_violation(&self, report: &IntegrityReport) {
        if report.is_clean() {
            return;
        }
        self.events.record(
            Event::new("integrity.violation")
                .severity(Severity::Error)
                .message(report.summary())
                .attr("violations", report.violations.len() as u64),
        );
    }

    /// Full integrity verification of the index: preorder-label nesting and
    /// subtree extents, path-link order and coverage, sibling-cover
    /// bookkeeping, the end-node registry, and every distinct stored
    /// constraint sequence's `f2` validity (Eq. 3) and Theorem 1 round-trip.
    ///
    /// Exhaustive — intended for `repro --verify`, tests, and offline
    /// checks, not the query hot path (see
    /// [`DatabaseBuilder::integrity_spot_check`] for the sampled in-band
    /// variant).
    pub fn verify_integrity(&mut self) -> IntegrityReport {
        let mut report = IntegrityReport::default();
        for sh in &mut self.shards {
            report.merge(sh.index.verify_integrity(&mut sh.corpus.paths));
        }
        self.record_integrity_violation(&report);
        report
    }

    /// The tracer behind this database's per-query tracing, if enabled.
    pub fn tracer(&self) -> Option<&Arc<Tracer>> {
        self.tracer.as_ref()
    }

    /// The slow-query log: every query whose wall time met
    /// [`TraceConfig::slow_threshold`], oldest first, each with its full
    /// span tree, the serialized query expression (the trace name), and
    /// metric deltas as root-span attributes.  Empty when tracing is off.
    pub fn slow_queries(&self) -> Vec<Arc<Trace>> {
        self.tracer
            .as_ref()
            .map_or_else(Vec::new, |t| t.slow_queries())
    }

    /// The head-sampled recent traces, oldest first.  Empty when tracing is
    /// off.
    pub fn recent_traces(&self) -> Vec<Arc<Trace>> {
        self.tracer
            .as_ref()
            .map_or_else(Vec::new, |t| t.recent_traces())
    }

    /// The flight recorder: a bounded, always-on journal of
    /// severity-levelled lifecycle events — builds, inserts, removals,
    /// compactions, configuration changes, integrity violations and slow
    /// queries — exportable as JSON Lines via [`EventJournal::to_jsonl`].
    /// Share the `Arc` with a [`xseq_telemetry::Watchdog`] or an
    /// [`AnomalyDetector`] to interleave their alerts into this timeline.
    pub fn events(&self) -> &Arc<EventJournal> {
        &self.events
    }

    /// Runtime-tunes the slow-query threshold: any query at least this
    /// slow records a `query.slow` flight-recorder event, and when tracing
    /// is on the tracer's slow-log threshold moves in lockstep.  Works
    /// with or without tracing (untraced databases start disarmed); the
    /// change itself is recorded as a `config.slow_query_threshold` event.
    pub fn set_slow_query_threshold(&self, threshold: Duration) {
        let ns = threshold.as_nanos().min(u64::MAX as u128) as u64;
        // ORDERING: config — advisory value read per query; no memory is
        // published through it.
        self.slow_threshold_ns.store(ns, Ordering::Relaxed);
        if let Some(tracer) = &self.tracer {
            tracer.set_slow_threshold(threshold);
        }
        self.events
            .record(Event::new("config.slow_query_threshold").attr("threshold_ns", ns));
    }

    /// The current slow-query threshold, or `None` when disarmed (the
    /// default for untraced databases).
    pub fn slow_query_threshold(&self) -> Option<Duration> {
        // ORDERING: config — advisory read.
        let ns = self.slow_threshold_ns.load(Ordering::Relaxed);
        (ns != u64::MAX).then(|| Duration::from_nanos(ns))
    }

    /// The continuous phase profile: cumulative wall-time attribution per
    /// pipeline phase, folded from the span-timer histograms every path
    /// already maintains — always on, sampling-free, and free to read.
    /// Render with [`PhaseProfile::to_collapsed`] for flamegraph or
    /// speedscope.
    pub fn phase_profile(&self) -> PhaseProfile {
        PhaseProfile::from_snapshot(&self.metrics(), PHASE_TREE)
    }

    /// Writes a self-contained diagnostics bundle into `dir` (created if
    /// missing): Prometheus and JSON metric snapshots, the stats report,
    /// the workload profile, heap attribution, recent and slow traces as
    /// Chrome trace JSON, the flight-recorder journal as JSON Lines, the
    /// collapsed phase profile, and a build/config manifest.  One call
    /// captures everything a bug report needs; `repro --diag DIR` wraps it
    /// on the command line and `cargo xtask diagcheck DIR` validates it.
    pub fn diagnostics(&self, dir: impl AsRef<Path>) -> std::io::Result<DiagnosticsReport> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        // stats() first: it refreshes the memory.* gauges the metric
        // exporters below then see.
        let stats = self.stats();
        let snap = self.metrics();
        let mut artifacts: Vec<(&'static str, String)> = vec![
            ("metrics.prom", xseq_telemetry::to_prometheus(&snap)),
            ("metrics.json", xseq_telemetry::to_json(&snap)),
            ("stats.txt", stats.render()),
            ("workload.json", stats.workload.to_json()),
            ("heap.json", heap_json(&stats)),
            ("traces_recent.json", traces_json(&self.recent_traces())),
            ("traces_slow.json", traces_json(&self.slow_queries())),
            ("events.jsonl", self.events.to_jsonl()),
            ("profile.collapsed", self.phase_profile().to_collapsed()),
        ];
        let manifest = self.manifest_json(&artifacts);
        artifacts.push(("manifest.json", manifest));
        let mut files = Vec::with_capacity(artifacts.len());
        for (name, contents) in &artifacts {
            std::fs::write(dir.join(name), contents)?;
            files.push(*name);
        }
        Ok(DiagnosticsReport {
            dir: dir.to_path_buf(),
            files,
        })
    }

    /// The bundle manifest: build/config provenance plus the artifact
    /// listing (itself included).
    fn manifest_json(&self, artifacts: &[(&'static str, String)]) -> String {
        use fmt::Write as _;
        let sequencing = match self.config.sequencing {
            Sequencing::DepthFirst => "depth_first",
            Sequencing::Probability => "probability",
        };
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"version\":\"{}\",\"sequencing\":\"{}\",\"threads\":{},\"shards\":{},\"docs\":{},\"paths\":{}",
            env!("CARGO_PKG_VERSION"),
            sequencing,
            self.pool.threads(),
            self.shards.len(),
            self.doc_map.len(),
            self.shards.iter().map(|sh| sh.corpus.paths.len()).sum::<usize>()
        );
        match self.config.compact_threshold {
            Some(t) => {
                let _ = write!(out, ",\"compact_threshold\":{t}");
            }
            None => out.push_str(",\"compact_threshold\":null"),
        }
        let _ = write!(
            out,
            ",\"tracing\":{},\"profiling\":{}",
            self.tracer.is_some(),
            self.workload.is_some()
        );
        match self.slow_query_threshold() {
            Some(t) => {
                let _ = write!(out, ",\"slow_threshold_ns\":{}", t.as_nanos());
            }
            None => out.push_str(",\"slow_threshold_ns\":null"),
        }
        let _ = write!(out, ",\"event_capacity\":{}", self.events.capacity());
        out.push_str(",\"files\":[");
        for (i, name) in artifacts
            .iter()
            .map(|(n, _)| *n)
            .chain(["manifest.json"])
            .enumerate()
        {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{name}\"");
        }
        out.push_str("]}");
        out
    }

    /// A point-in-time snapshot of every pipeline metric: the `xml.parse`,
    /// `sequence.encode`, `query.parse`, `index.plan`, `index.search` and
    /// `storage.pool.*` phases plus the matcher work counters.
    pub fn metrics(&self) -> Snapshot {
        self.registry.snapshot()
    }

    /// The registry behind [`Database::metrics`], shareable with pools and
    /// external reporting (see [`DatabaseBuilder::metrics_registry`]).
    pub fn metrics_registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// `storage.pool.*` counter handles, for attaching to a
    /// [`BufferPool`] or [`PagedTrie`] serving this database's index.
    pub fn pool_telemetry(&self) -> PoolTelemetry {
        PoolTelemetry::register(&self.registry)
    }

    /// A snapshot of the accumulated workload profile: per-class query
    /// frequency, result cardinality and latency for every schema node
    /// class touched so far — the Eq. 6 input for deriving `w(C)` from
    /// live traffic.  Empty when the builder disabled
    /// [`DatabaseBuilder::profiling`].
    pub fn workload_profile(&self) -> WorkloadProfile {
        self.workload
            .as_ref()
            .map(WorkloadRecorder::snapshot)
            .unwrap_or_default()
    }

    /// Hands off the accumulated profile and starts a fresh epoch (e.g.
    /// feed the returned profile to a re-sequencing pass while new traffic
    /// accumulates separately).  Empty when profiling is off.
    pub fn take_workload_profile(&self) -> WorkloadProfile {
        self.workload
            .as_ref()
            .map(WorkloadRecorder::take)
            .unwrap_or_default()
    }

    /// The database-wide observability report: deep index shape statistics
    /// (a read-only walk over frozen ∪ delta), modelled heap attribution,
    /// cumulative pool counters and the current workload profile.
    ///
    /// As a side effect the `memory.corpus.bytes`, `memory.index.bytes`
    /// and `memory.total.bytes` gauges are refreshed, so a metrics
    /// snapshot taken after `stats()` carries the attribution too.
    pub fn stats(&self) -> DatabaseStats {
        let shards: Vec<ShardStats> = self
            .shards
            .iter()
            .map(|sh| ShardStats {
                docs: sh.corpus.len(),
                paths: sh.corpus.paths.len(),
                index: sh.index.stats(),
                memory: MemoryStats {
                    corpus_bytes: sh.corpus.heap_bytes(),
                    index_bytes: sh.index.heap_bytes(),
                },
            })
            .collect();
        let mut shard_iter = shards.iter();
        let mut index = shard_iter
            .next()
            .map(|sh| sh.index.clone())
            .unwrap_or_default();
        for sh in shard_iter {
            index.merge(&sh.index);
        }
        let memory = MemoryStats {
            corpus_bytes: shards.iter().map(|s| s.memory.corpus_bytes).sum(),
            index_bytes: shards.iter().map(|s| s.memory.index_bytes).sum(),
        };
        self.registry
            .gauge("memory.corpus.bytes")
            .set(memory.corpus_bytes as i64);
        self.registry
            .gauge("memory.index.bytes")
            .set(memory.index_bytes as i64);
        self.registry
            .gauge("memory.total.bytes")
            .set(memory.total_bytes() as i64);
        DatabaseStats {
            docs: self.doc_map.len(),
            paths: shards.iter().map(|s| s.paths).sum(),
            index,
            memory,
            pool: PoolStats {
                hits: self.pool_tel.hits.get(),
                misses: self.pool_tel.misses.get(),
                evictions: self.pool_tel.evictions.get(),
            },
            workload: self.workload_profile(),
            shards,
        }
    }

    /// Answers a pre-built tree pattern.  The pattern's labels are bound
    /// to shard 0's symbol tables (see [`Database::corpus_mut`]); for the
    /// other shards each label is re-bound to the local interner, and a
    /// shard lacking any label provably matches nothing and is skipped.
    pub fn query_pattern(&self, pattern: &TreePattern) -> QueryOutcome {
        if self.shards.len() == 1 {
            let sh = self.shard0();
            return sh.index.query(pattern, &sh.corpus.paths);
        }
        let mut acc = QueryOutcome::default();
        let mut lists = Vec::with_capacity(self.shards.len());
        let from = &self.shard0().corpus.symbols;
        for (s, sh) in self.shards.iter().enumerate() {
            let local = if s == 0 {
                Some(pattern.clone())
            } else {
                rebind_pattern(pattern, from, &sh.corpus.symbols)
            };
            let Some(local) = local else { continue };
            let mut out = sh.index.query(&local, &sh.corpus.paths);
            sh.globalize(&mut out.docs);
            lists.push(std::mem::take(&mut out.docs));
            absorb_shard_outcome(&mut acc, out);
        }
        acc.docs = kway_merge(lists);
        acc.classes.sort_unstable();
        acc.classes.dedup();
        acc
    }

    /// The worker pool shared by ingest and [`Database::query_batch`].
    pub fn pool(&self) -> Pool {
        self.pool
    }

    /// Adds one document through the update path: the XML is parsed into
    /// the shared corpus (new element names and values intern *here*, never
    /// at query time), sequenced with the index's strategy, and appended to
    /// the in-memory **delta segment** — the frozen trie is untouched, and
    /// the very next query sees the document (queries run over
    /// *frozen ∪ delta − tombstones*).
    ///
    /// Returns the new document's id.  When the builder enabled
    /// [`DatabaseBuilder::auto_compact`] and this insert crosses the
    /// threshold, a [`Database::compact`] runs inline and the returned id
    /// is the **post-compaction** id.
    pub fn insert_document(&mut self, xml: &str) -> Result<DocId, Error> {
        let id = self.insert_one(xml)?;
        if let Some(remap) = self.auto_compact_if_needed() {
            let new_id =
                remap[id as usize].expect("freshly inserted document survives its own compaction");
            return Ok(new_id);
        }
        Ok(id)
    }

    /// The shared insert kernel: routes the document to its shard by the
    /// global-id hash, parses into that shard's corpus (new element names
    /// and values intern *there*, never at query time), and appends to the
    /// shard's delta segment.  No auto-compaction check.
    fn insert_one(&mut self, xml: &str) -> Result<DocId, Error> {
        let timer = SpanTimer::new(self.update_insert_hist.clone());
        let global = self.doc_map.len() as DocId;
        let s = shard_of(global, self.shards.len());
        // PANIC-FREE: shard_of reduces modulo self.shards.len()
        let sh = &mut self.shards[s];
        let local = sh.corpus.parse_and_push(xml)?;
        // PANIC-FREE: parse_and_push returned local as the freshly pushed
        // document's index
        let doc = &sh.corpus.docs[local as usize];
        sh.index.insert_delta(doc, local, &mut sh.corpus.paths);
        sh.global_ids.push(global);
        self.doc_map.push((s as u32, local));
        if self.merge_ticker.is_none() {
            // Inline mode: fold due merges right here, keeping the run
            // count logarithmic without a background worker.  Only this
            // shard's memtable was cut, so only it can be due.
            let sh = &self.shards[s];
            drain_shard_merges(
                s,
                self.shards.len(),
                sh.index.delta(),
                &self.registry,
                &self.events,
                &self.merge_hist,
            );
        } else {
            self.tick_merge_watchdog();
        }
        self.refresh_update_gauges();
        let total_ns = timer.finish();
        self.events.record(
            Event::new("ingest.insert")
                .severity(Severity::Debug)
                .attr("doc", global as u64)
                .attr("shard", s as u64)
                .attr("total_ns", total_ns),
        );
        Ok(global)
    }

    /// [`Database::insert_document`] for a batch: all documents join the
    /// delta segment, then a single auto-compaction check runs at the end,
    /// so the returned ids are consistent with each other.  On a parse
    /// error the documents before it remain inserted.
    pub fn insert_documents<'a>(
        &mut self,
        xmls: impl IntoIterator<Item = &'a str>,
    ) -> Result<Vec<DocId>, Error> {
        let mut ids = Vec::new();
        for xml in xmls {
            ids.push(self.insert_one(xml)?);
        }
        if let Some(remap) = self.auto_compact_if_needed() {
            for id in &mut ids {
                *id = remap[*id as usize]
                    .expect("freshly inserted documents survive their own compaction");
            }
        }
        Ok(ids)
    }

    /// Removes a document: its id is tombstoned and stops appearing in any
    /// query result immediately; [`Database::compact`] later drops the
    /// document (and its sequences) for good.  Returns `false` when `id`
    /// does not exist or was already removed.
    pub fn remove_document(&mut self, id: DocId) -> bool {
        let Some(&(s, local)) = self.doc_map.get(id as usize) else {
            return false;
        };
        let timer = SpanTimer::new(self.update_remove_hist.clone());
        // PANIC-FREE: doc_map entries name the shard that minted them
        let fresh = self.shards[s as usize].index.remove_doc(local);
        let total_ns = timer.finish();
        if fresh {
            self.tick_merge_watchdog();
            self.refresh_update_gauges();
            self.events.record(
                Event::new("ingest.remove")
                    .severity(Severity::Debug)
                    .attr("doc", id as u64)
                    .attr("shard", u64::from(s))
                    .attr("total_ns", total_ns),
            );
            self.auto_compact_if_needed();
        }
        fresh
    }

    /// Runs the configured auto-compaction policy: with one shard the
    /// whole database compacts once total pending updates reach the
    /// threshold (the historical behaviour); with several, each shard is
    /// checked **independently** and only the shards over the threshold
    /// compact — the per-shard schedulability the shard split buys.
    /// Returns the global remap when anything compacted.
    fn auto_compact_if_needed(&mut self) -> Option<Vec<Option<DocId>>> {
        let threshold = self.config.compact_threshold?;
        let due: Vec<usize> = self
            .shards
            .iter()
            .enumerate()
            .filter(|(_, sh)| sh.pending_updates() >= threshold)
            .map(|(s, _)| s)
            .collect();
        if self.shards.len() == 1 {
            let total: usize = self.shards.iter().map(Shard::pending_updates).sum();
            if total >= threshold {
                return Some(self.compact().remap);
            }
            return None;
        }
        if due.is_empty() {
            return None;
        }
        Some(self.compact_shards(&due).remap)
    }

    /// Drains every pending tier merge across all shards on the calling
    /// thread, returning the number of merges performed.  This is exactly
    /// what the background worker does once per period; call it directly
    /// to quiesce the tiered delta deterministically (tests and benchmarks
    /// do).  Queries holding an older [`DeltaView`] keep their segment set
    /// — a merge only swaps the published list.
    pub fn run_pending_merges(&self) -> usize {
        let nshards = self.shards.len();
        let mut merges = 0;
        for (s, sh) in self.shards.iter().enumerate() {
            merges += drain_shard_merges(
                s,
                nshards,
                sh.index.delta(),
                &self.registry,
                &self.events,
                &self.merge_hist,
            );
        }
        if merges > 0 {
            self.refresh_update_gauges();
        }
        merges
    }

    /// Advances the background-merge watchdog one tick and returns the
    /// names of any workers currently flagged stalled (empty without
    /// [`DatabaseBuilder::background_merge`]).  The foreground update path
    /// ticks automatically on every insert/remove; call this from an
    /// external supervision loop when the database is otherwise idle.
    pub fn tick_merge_watchdog(&self) -> Vec<String> {
        self.merge_watchdog
            .as_ref()
            .map_or_else(Vec::new, |w| w.tick())
    }

    /// True when a background merge worker is running.
    pub fn has_background_merge(&self) -> bool {
        self.merge_ticker.is_some()
    }

    /// Folds the delta segment and tombstones back into a single frozen
    /// segment by replaying the original build pipeline — parallel
    /// part-sort → k-way merge → `bulk_load_presorted` → `freeze_parallel`
    /// — over the **surviving** documents.
    ///
    /// The surviving documents are re-interned into fresh symbol/path
    /// tables in document order (a document's arena order is its parse
    /// encounter order, so stateful re-interning replays the original
    /// first-occurrence interning exactly), the sequencing strategy is
    /// re-derived the way [`DatabaseBuilder`] derived it, and ids renumber
    /// densely — the result is **bit-identical** to building a fresh
    /// database from the survivors' XML.  `verify_integrity()` and the
    /// Theorem 1/2 invariants therefore keep holding after any update
    /// history.
    pub fn compact(&mut self) -> CompactionReport {
        let all: Vec<usize> = (0..self.shards.len()).collect();
        self.compact_shards(&all)
    }

    /// [`Database::compact`] for one shard — the independently schedulable
    /// unit the shard split buys: only shard `s`'s delta and tombstones
    /// fold into its frozen segment; every other shard's structures are
    /// untouched.  Global doc ids still renumber densely across the whole
    /// database (the returned remap covers every document), so callers
    /// can compact shards one at a time between query waves.
    pub fn compact_shard(&mut self, s: usize) -> CompactionReport {
        assert!(s < self.shards.len(), "shard index out of range");
        self.compact_shards(&[s])
    }

    /// The shared compaction kernel: rebuilds each selected shard from its
    /// surviving documents, then renumbers global ids densely by walking
    /// the old global order (survivors keep their relative order, so the
    /// per-shard local→global maps stay ascending and merged query results
    /// stay sorted).
    fn compact_shards(&mut self, which: &[usize]) -> CompactionReport {
        let timer = SpanTimer::new(self.compact_hist.clone());
        let nshards = self.shards.len();
        let docs_before = self.doc_map.len();
        let tombstones_dropped: usize = which
            .iter()
            .map(|&s| self.shards[s].index.tombstones().len())
            .sum();
        let delta_merged: usize = which
            .iter()
            .map(|&s| self.shards[s].index.delta().sequence_count())
            .sum();
        self.events.record(
            Event::new("compact.start")
                .attr("docs", docs_before as u64)
                .attr("tombstones", tombstones_dropped as u64)
                .attr("delta", delta_merged as u64),
        );
        let mut local_remaps: Vec<Option<Vec<Option<DocId>>>> = vec![None; nshards];
        for &s in which {
            // PANIC-FREE: compact_shard bounds-checks and compact
            // enumerates 0..nshards
            let sh = &mut self.shards[s];
            let mode = sh.corpus.symbols.values.mode();
            let mut symbols = SymbolTable::with_value_mode(mode);
            let locals = sh.corpus.docs.len();
            let mut remap: Vec<Option<DocId>> = vec![None; locals];
            let mut docs = Vec::with_capacity(locals);
            {
                let old = &sh.corpus.symbols;
                let tombstones = sh.index.tombstones();
                for (id, doc) in sh.corpus.docs.iter().enumerate() {
                    if tombstones.contains(id as DocId) {
                        continue;
                    }
                    let mut doc = doc.clone();
                    // Arena order = parse encounter order, so interning
                    // through the fresh tables here replays a from-scratch
                    // parse.
                    doc.remap_symbols(|sym| reintern_symbol(sym, old, &mut symbols));
                    remap[id] = Some(docs.len() as DocId);
                    docs.push(doc);
                }
            }
            let mut fresh = Corpus::new(mode);
            fresh.symbols = symbols;
            for doc in docs {
                fresh.push(doc);
            }
            fresh.attach_parse_histogram(self.registry.histogram("xml.parse"));
            let strategy = compute_strategy(&self.config, &mut fresh);
            let index = if nshards == 1 {
                XmlIndex::build_parallel(
                    &fresh.docs,
                    &mut fresh.paths,
                    strategy,
                    self.config.plan,
                    Some(IndexTelemetry::register(&self.registry)),
                    &self.pool,
                )
            } else {
                // Shards are rebuilt the same way finish_build built them,
                // so a compacted shard stays bit-identical to a fresh
                // build over its survivors.
                XmlIndex::build_instrumented(
                    &fresh.docs,
                    &mut fresh.paths,
                    strategy,
                    self.config.plan,
                    Some(IndexTelemetry::register_shard(&self.registry, s, nshards)),
                )
            };
            sh.corpus = fresh;
            sh.index = index;
            sh.index
                .configure_delta(self.config.memtable_limit, self.config.tier_ratio);
            local_remaps[s] = Some(remap);
            if nshards == 1 {
                self.registry.gauge("index.delta.sequences").set(0);
                self.registry.gauge("index.delta.runs").set(0);
                self.registry.gauge("index.tombstones").set(0);
            } else {
                self.registry
                    .gauge(&format!("index.shard{s}.delta.sequences"))
                    .set(0);
                self.registry
                    .gauge(&format!("index.shard{s}.delta.runs"))
                    .set(0);
                self.registry
                    .gauge(&format!("index.shard{s}.tombstones"))
                    .set(0);
            }
        }
        // Swap the rebuilt shards' fresh delta handles in for the
        // background merge worker (the old handles die with the last
        // in-flight snapshot).
        {
            let mut handles = self.merge_handles.lock().unwrap_or_else(|p| p.into_inner());
            for &s in which {
                // PANIC-FREE: handles is built with one entry per shard
                handles[s] = self.shards[s].index.delta_handle();
            }
        }
        // Dense global renumbering: walk the old global order.  A shard's
        // locals appear in ascending global order (routing is sticky and
        // locals mint sequentially), so pushing survivors in walk order
        // rebuilds each shard's global_ids aligned with its local ids.
        let old_map = std::mem::take(&mut self.doc_map);
        let mut remap: Vec<Option<DocId>> = vec![None; docs_before];
        for sh in &mut self.shards {
            sh.global_ids.clear();
        }
        for (g, (s, local)) in old_map.into_iter().enumerate() {
            let su = s as usize;
            let new_local = match &local_remaps[su] {
                // An untouched shard keeps every local id.
                None => Some(local),
                // PANIC-FREE: the shard's remap is sized to its old corpus
                Some(lr) => lr[local as usize],
            };
            let Some(new_local) = new_local else { continue };
            let new_global = self.doc_map.len() as DocId;
            // PANIC-FREE: su comes from a doc_map entry naming its shard
            debug_assert_eq!(new_local as usize, self.shards[su].global_ids.len());
            self.shards[su].global_ids.push(new_global);
            self.doc_map.push((s, new_local));
            remap[g] = Some(new_global);
        }
        self.refresh_update_gauges();
        let total_ns = timer.finish();
        self.events.record(
            Event::new("compact.finish")
                .attr("docs", self.doc_map.len() as u64)
                .attr("dropped", tombstones_dropped as u64)
                .attr("merged", delta_merged as u64)
                .attr("total_ns", total_ns),
        );
        CompactionReport {
            docs_before,
            docs_after: self.doc_map.len(),
            tombstones_dropped,
            delta_merged,
            remap,
        }
    }

    /// Re-derives the aggregate `index.delta.sequences` and
    /// `index.tombstones` gauges from the shards.  With one shard the
    /// index telemetry sets the plain gauges itself; with several, each
    /// shard only sets its `index.shardN.*` family (gauges are `set`, so
    /// shards sharing one would clobber each other) and this sums them.
    fn refresh_update_gauges(&self) {
        if self.shards.len() <= 1 {
            return;
        }
        let delta: usize = self
            .shards
            .iter()
            .map(|sh| sh.index.delta().sequence_count())
            .sum();
        let runs: usize = self
            .shards
            .iter()
            .map(|sh| sh.index.delta().run_count())
            .sum();
        let tomb: usize = self
            .shards
            .iter()
            .map(|sh| sh.index.tombstones().len())
            .sum();
        self.registry
            .gauge("index.delta.sequences")
            .set(delta as i64);
        self.registry.gauge("index.delta.runs").set(runs as i64);
        self.registry.gauge("index.tombstones").set(tomb as i64);
    }

    /// Adds one more document.  Alias of [`Database::insert_document`] —
    /// the historical name, kept for compatibility; both use the delta
    /// path.
    pub fn insert_xml(&mut self, xml: &str) -> Result<DocId, Error> {
        self.insert_document(xml)
    }

    /// The underlying index — shard 0's.  With `shards(1)` (the
    /// historical configuration) this is the whole database's index; with
    /// more, use [`Database::shard_index`] to reach the others.
    pub fn index(&self) -> &XmlIndex {
        &self.shard0().index
    }

    /// Shard 0's corpus.  With `shards(1)` this is the whole database's
    /// corpus; its symbol tables are the binding context for
    /// [`Database::query_pattern`] patterns.
    pub fn corpus(&self) -> &Corpus {
        &self.shard0().corpus
    }

    /// Mutable access to shard 0's corpus, e.g. for interning query
    /// symbols when hand-building a [`TreePattern`].
    pub fn corpus_mut(&mut self) -> &mut Corpus {
        // PANIC-FREE: finish_build always creates at least one shard
        &mut self.shards[0].corpus
    }

    /// Number of shards the documents are hash-partitioned across.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Shard `s`'s index.
    pub fn shard_index(&self, s: usize) -> &XmlIndex {
        &self.shards[s].index
    }

    /// Shard `s`'s corpus.
    pub fn shard_corpus(&self, s: usize) -> &Corpus {
        &self.shards[s].corpus
    }

    /// Where global document `id` lives: `(shard, local id)`, or `None`
    /// for an id this database never minted.
    pub fn doc_location(&self, id: DocId) -> Option<(usize, DocId)> {
        self.doc_map
            .get(id as usize)
            .map(|&(s, local)| (s as usize, local))
    }

    /// Number of indexed documents.
    pub fn len(&self) -> usize {
        self.doc_map.len()
    }

    /// True when the database holds no documents (never, post-build).
    pub fn is_empty(&self) -> bool {
        self.doc_map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quickstart_flow() {
        let db = DatabaseBuilder::new()
            .build_from_xml([
                "<project><research><loc>newyork</loc></research></project>",
                "<project><develop><loc>boston</loc></develop></project>",
            ])
            .unwrap();
        assert_eq!(db.len(), 2);
        assert_eq!(
            db.query_xpath("/project//loc[text='boston']").unwrap(),
            vec![1]
        );
        assert_eq!(db.query_xpath("//loc").unwrap(), vec![0, 1]);
        assert_eq!(db.query_xpath("/project/research").unwrap(), vec![0]);
    }

    #[test]
    fn depth_first_database() {
        let db = DatabaseBuilder::new()
            .sequencing(Sequencing::DepthFirst)
            .build_from_xml(["<a><b/></a>", "<a><c/></a>"])
            .unwrap();
        assert_eq!(db.query_xpath("/a/b").unwrap(), vec![0]);
    }

    #[test]
    fn empty_database_is_an_error() {
        assert_eq!(
            DatabaseBuilder::new().build_from_xml([]).err(),
            Some(Error::EmptyDatabase)
        );
    }

    #[test]
    fn bad_xml_and_bad_query_errors() {
        let err = DatabaseBuilder::new().build_from_xml(["<a>"]).unwrap_err();
        assert!(matches!(err, Error::Xml(_)));
        let db = DatabaseBuilder::new().build_from_xml(["<a/>"]).unwrap();
        assert!(matches!(db.query_xpath("a"), Err(Error::Query(_))));
    }

    #[test]
    fn insert_then_query() {
        let mut db = DatabaseBuilder::new()
            .build_from_xml(["<a><b/></a>"])
            .unwrap();
        let id = db.insert_xml("<a><c/></a>").unwrap();
        assert_eq!(id, 1);
        assert_eq!(db.query_xpath("/a/c").unwrap(), vec![1]);
    }

    #[test]
    fn boost_changes_sequences_not_answers() {
        let xmls = ["<p><a><x/></a><b/></p>", "<p><a/><b/></p>", "<p><b/></p>"];
        let plain = DatabaseBuilder::new().build_from_xml(xmls).unwrap();
        let boosted = DatabaseBuilder::new()
            .boost("/p/a/x", 100.0)
            .build_from_xml(xmls)
            .unwrap();
        for q in ["/p/a", "/p/b", "/p/a/x", "//x"] {
            assert_eq!(
                plain.query_xpath(q).unwrap(),
                boosted.query_xpath(q).unwrap(),
                "{q}"
            );
        }
    }

    #[test]
    fn metrics_contain_every_pipeline_phase() {
        let db = DatabaseBuilder::new()
            .build_from_xml(["<a><b>x</b></a>", "<a><c/></a>"])
            .unwrap();
        db.query_xpath("/a/b").unwrap();
        let snap = db.metrics();
        for phase in [
            "xml.parse",
            "sequence.encode",
            "query.parse",
            "index.plan",
            "index.search",
            "storage.pool",
        ] {
            assert!(snap.has_prefix(phase), "missing phase {phase}");
        }
        // ingestion and the query each left latency samples behind
        assert_eq!(snap.histogram("xml.parse").unwrap().count, 2);
        assert_eq!(snap.histogram("query.parse").unwrap().count, 1);
        assert_eq!(snap.histogram("index.plan").unwrap().count, 1);
        assert_eq!(snap.histogram("index.search").unwrap().count, 1);
        // sequence.encode sampled at build (2 docs) and at query (1)
        assert_eq!(snap.histogram("sequence.encode").unwrap().count, 3);
        assert!(snap.counter("index.search.candidates") > 0);
    }

    #[test]
    fn query_phases_accumulate_and_delta() {
        let mut db = DatabaseBuilder::new()
            .build_from_xml(["<a><b/></a>"])
            .unwrap();
        let before = db.metrics();
        db.query_xpath("/a/b").unwrap();
        db.query_xpath("//b").unwrap();
        let delta = db.metrics().delta(&before);
        assert_eq!(delta.histogram("index.search").unwrap().count, 2);
        assert_eq!(delta.histogram("query.parse").unwrap().count, 2);
        // insert_xml keeps recording xml.parse through the same histogram
        db.insert_xml("<a><c/></a>").unwrap();
        assert_eq!(db.metrics().histogram("xml.parse").unwrap().count, 2);
    }

    #[test]
    fn shared_registry_across_databases() {
        let reg = std::sync::Arc::new(MetricsRegistry::new());
        let db1 = DatabaseBuilder::new()
            .metrics_registry(reg.clone())
            .build_from_xml(["<a><b/></a>"])
            .unwrap();
        let db2 = DatabaseBuilder::new()
            .metrics_registry(reg.clone())
            .build_from_xml(["<a><c/></a>"])
            .unwrap();
        db1.query_xpath("/a/b").unwrap();
        db2.query_xpath("/a/c").unwrap();
        assert_eq!(reg.snapshot().histogram("index.search").unwrap().count, 2);
    }

    #[test]
    fn pool_telemetry_reaches_database_registry() {
        use xseq_storage::{write_paged_trie, MemStore, PagedTrie};
        let mut db = DatabaseBuilder::new()
            .build_from_xml(["<a><b/></a>", "<a><c/></a>"])
            .unwrap();
        let mut store = MemStore::new();
        write_paged_trie(db.index().trie(), &mut store).unwrap();
        let paged = PagedTrie::open(store, 4).unwrap();
        paged.attach_pool_telemetry(db.pool_telemetry());
        let pattern = parse_xpath("/a/b", &mut db.corpus_mut().symbols).unwrap();
        let strategy = db.index().strategy().clone();
        for qdoc in xseq_index::instantiate(
            &pattern,
            &db.corpus().paths,
            db.index().data_paths(),
            db.index().options(),
        ) {
            let qs = xseq_index::QuerySequence::from_document(
                &qdoc,
                &mut db.corpus_mut().paths,
                &strategy,
            );
            let _ = xseq_index::tree_search(&paged, &qs);
        }
        let snap = db.metrics();
        assert!(snap.counter("storage.pool.misses") > 0);
        let st = paged.pool_stats();
        assert_eq!(
            st.hits + st.misses,
            snap.counter("storage.pool.hits") + snap.counter("storage.pool.misses")
        );
        assert!(st.hit_ratio().is_some());
    }

    #[test]
    fn traced_query_lands_in_slow_log() {
        let db = DatabaseBuilder::new()
            .trace_config(TraceConfig {
                sample_rate: 1.0,
                slow_threshold: std::time::Duration::ZERO,
                recent_capacity: 8,
                slow_capacity: 8,
            })
            .build_from_xml(["<a><b>x</b></a>", "<a><c/></a>"])
            .unwrap();
        let out = db.query_xpath_full("/a/b").unwrap();
        let trace = out.trace.clone().expect("tracing is on");
        assert!(trace.slow && trace.sampled);
        let names: Vec<&str> = trace.spans.iter().map(|s| s.name).collect();
        for n in [
            "query",
            "query.parse",
            "index.plan",
            "sequence.encode",
            "trie.descent",
            "search.link_probes",
        ] {
            assert!(names.contains(&n), "{n} missing from {names:?}");
        }
        // every child is bracketed by its parent
        for s in &trace.spans {
            if let Some(p) = s.parent {
                let parent = trace.span(p);
                assert!(parent.start_ns <= s.start_ns && s.end_ns <= parent.end_ns);
            }
        }
        let slow = db.slow_queries();
        assert_eq!(slow.len(), 1);
        assert_eq!(slow[0].name, "/a/b", "serialized query retained");
        assert_eq!(slow[0].id, trace.id);
        let json = slow[0].to_chrome_json();
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(
            out.explain().contains("trie.descent"),
            "explain shows spans"
        );
        assert_eq!(db.recent_traces().len(), 1);
        assert!(db.tracer().unwrap().stats().started >= 1);
    }

    #[test]
    fn untraced_database_has_no_tracing_surface() {
        let db = DatabaseBuilder::new().build_from_xml(["<a/>"]).unwrap();
        let out = db.query_xpath_full("/a").unwrap();
        assert!(out.trace.is_none());
        assert!(db.slow_queries().is_empty());
        assert!(db.recent_traces().is_empty());
        assert!(db.tracer().is_none());
    }

    #[test]
    fn failed_parse_still_traces() {
        let db = DatabaseBuilder::new()
            .trace_config(TraceConfig {
                sample_rate: 0.0,
                slow_threshold: std::time::Duration::ZERO,
                recent_capacity: 4,
                slow_capacity: 4,
            })
            .build_from_xml(["<a/>"])
            .unwrap();
        assert!(db.query_xpath("not an xpath").is_err());
        let slow = db.slow_queries();
        assert_eq!(slow.len(), 1);
        assert!(slow[0].root().attrs.iter().any(|(k, _)| *k == "error"));
    }

    #[test]
    fn verify_integrity_is_clean_for_built_databases() {
        // Single document, then a few more — both strategies.
        for seq in [Sequencing::DepthFirst, Sequencing::Probability] {
            let mut db = DatabaseBuilder::new()
                .sequencing(seq)
                .build_from_xml(["<a><b>x</b></a>"])
                .unwrap();
            let report = db.verify_integrity();
            assert!(report.is_clean(), "{seq:?} single doc: {}", report.render());
            db.insert_xml("<a><c/><c><d/></c></a>").unwrap();
            db.insert_xml("<a><b>y</b><c/></a>").unwrap();
            let report = db.verify_integrity();
            assert!(report.is_clean(), "{seq:?} grown: {}", report.render());
            assert!(report.sequences_checked >= 2);
        }
    }

    #[test]
    fn spot_check_fires_at_the_configured_rate() {
        let db = DatabaseBuilder::new()
            .integrity_spot_check(0.5)
            .build_from_xml(["<a><b/></a>"])
            .unwrap();
        let mut fired = 0;
        for _ in 0..10 {
            let out = db.query_xpath_full("/a/b").unwrap();
            if let Some(report) = &out.integrity {
                assert!(report.is_clean(), "{}", report.render());
                assert!(out.explain().contains("integrity: clean"));
                fired += 1;
            }
        }
        assert_eq!(fired, 5, "fixed-point sampling is exact");
    }

    #[test]
    fn spot_check_is_off_by_default() {
        let db = DatabaseBuilder::new().build_from_xml(["<a/>"]).unwrap();
        for _ in 0..5 {
            assert!(db.query_xpath_full("/a").unwrap().integrity.is_none());
        }
    }

    #[test]
    fn spot_check_reaches_traced_queries() {
        let db = DatabaseBuilder::new()
            .integrity_spot_check(1.0)
            .trace_config(TraceConfig {
                sample_rate: 1.0,
                slow_threshold: std::time::Duration::ZERO,
                recent_capacity: 4,
                slow_capacity: 4,
            })
            .build_from_xml(["<a><b/></a>"])
            .unwrap();
        let out = db.query_xpath_full("/a/b").unwrap();
        assert!(out.integrity.as_ref().is_some_and(|r| r.is_clean()));
        let trace = out.trace.expect("tracing is on");
        assert!(
            trace.root().attrs.iter().any(|(k, _)| *k == "integrity"),
            "spot-check summary lands on the trace root"
        );
    }

    #[test]
    fn insert_remove_query_union_semantics() {
        let mut db = DatabaseBuilder::new()
            .build_from_xml(["<a><b/></a>", "<a><b/><c/></a>"])
            .unwrap();
        let id = db.insert_document("<a><b/><d/></a>").unwrap();
        assert_eq!(id, 2);
        // union: frozen hits + delta hits
        assert_eq!(db.query_xpath("/a/b").unwrap(), vec![0, 1, 2]);
        assert_eq!(db.query_xpath("/a/d").unwrap(), vec![2]);
        assert_eq!(db.index().delta().sequence_count(), 1);
        // tombstone filters immediately, from either segment
        assert!(db.remove_document(1));
        assert!(!db.remove_document(1), "double remove is a no-op");
        assert!(!db.remove_document(99), "unknown id is a no-op");
        assert_eq!(db.query_xpath("/a/b").unwrap(), vec![0, 2]);
        assert!(db.remove_document(2));
        assert_eq!(db.query_xpath("/a/d").unwrap(), Vec::<DocId>::new());
        let report = db.verify_integrity();
        assert!(report.is_clean(), "{}", report.render());
    }

    #[test]
    fn compact_is_bit_identical_to_rebuild_over_survivors() {
        for seq in [Sequencing::DepthFirst, Sequencing::Probability] {
            let mut db = DatabaseBuilder::new()
                .sequencing(seq)
                .build_from_xml([
                    "<p><r><l>boston</l></r></p>",
                    "<p><d><l>newyork</l></d></p>",
                    "<p><r><l>austin</l></r></p>",
                ])
                .unwrap();
            db.insert_document("<p><r><l>seattle</l></r><z/></p>")
                .unwrap();
            db.insert_document("<q><x/></q>").unwrap();
            assert!(db.remove_document(1));
            assert!(db.remove_document(3));
            let report = db.compact();
            assert_eq!(report.docs_before, 5);
            assert_eq!(report.docs_after, 3);
            assert_eq!(report.tombstones_dropped, 2);
            assert_eq!(report.delta_merged, 2);
            assert_eq!(
                report.remap,
                vec![Some(0), None, Some(1), None, Some(2)],
                "{seq:?}: survivors renumber densely in order"
            );
            assert!(db.index().delta().is_empty());
            assert!(db.index().tombstones().is_empty());
            // Bit-identity with a from-scratch build over the survivors.
            let reference = DatabaseBuilder::new()
                .sequencing(seq)
                .build_from_xml([
                    "<p><r><l>boston</l></r></p>",
                    "<p><r><l>austin</l></r></p>",
                    "<q><x/></q>",
                ])
                .unwrap();
            assert!(
                db.index().trie().identical_to(reference.index().trie()),
                "{seq:?}: compacted trie diverges from rebuild"
            );
            assert_eq!(db.index().data_paths(), reference.index().data_paths());
            assert_eq!(db.corpus().paths.len(), reference.corpus().paths.len());
            assert_eq!(
                db.corpus().symbols.designator_count(),
                reference.corpus().symbols.designator_count()
            );
            assert_eq!(
                db.corpus().symbols.values.len(),
                reference.corpus().symbols.values.len()
            );
            for q in ["/p/r/l", "//l[text='austin']", "/q/x", "/p/z"] {
                assert_eq!(
                    db.query_xpath(q).unwrap(),
                    reference.query_xpath(q).unwrap(),
                    "{seq:?}: {q}"
                );
            }
            let report = db.verify_integrity();
            assert!(report.is_clean(), "{seq:?}: {}", report.render());
        }
    }

    #[test]
    fn auto_compaction_threshold_fires_and_remaps() {
        let mut db = DatabaseBuilder::new()
            .sequencing(Sequencing::DepthFirst)
            .auto_compact(3)
            .build_from_xml(["<a><b/></a>"])
            .unwrap();
        // threshold 3: two updates stay in the overlay…
        let a = db.insert_document("<a><x/></a>").unwrap();
        assert_eq!(a, 1);
        assert!(db.remove_document(0));
        assert_eq!(db.index().pending_updates(), 2);
        // …the third triggers compaction; the fresh insert survives and is
        // renumbered (doc 0 dropped, so the two inserts become 0 and 1).
        let b = db.insert_document("<a><y/></a>").unwrap();
        assert_eq!(b, 1, "post-compaction id");
        assert_eq!(db.index().pending_updates(), 0);
        assert!(db.index().delta().is_empty());
        assert_eq!(db.len(), 2);
        assert_eq!(db.query_xpath("/a/x").unwrap(), vec![0]);
        assert_eq!(db.query_xpath("/a/y").unwrap(), vec![1]);
    }

    #[test]
    fn insert_documents_batch_compacts_once() {
        let mut db = DatabaseBuilder::new()
            .sequencing(Sequencing::DepthFirst)
            .auto_compact(2)
            .build_from_xml(["<a><b/></a>"])
            .unwrap();
        let ids = db
            .insert_documents(["<a><c/></a>", "<a><d/></a>", "<a><e/></a>"])
            .unwrap();
        // All three joined the delta, then one compaction ran at the end.
        assert_eq!(ids, vec![1, 2, 3]);
        assert!(db.index().delta().is_empty());
        assert_eq!(db.query_xpath("/a/e").unwrap(), vec![3]);
    }

    #[test]
    fn readonly_query_sees_names_interned_by_insert() {
        let mut db = DatabaseBuilder::new()
            .build_from_xml(["<a><b/></a>"])
            .unwrap();
        // "z" is unknown: the read-only parse proves the query empty.
        assert_eq!(db.query_xpath("/a/z").unwrap(), Vec::<DocId>::new());
        // Inserting a document interns "z" into the merged symbol view;
        // queries (still read-only) now resolve it.
        let id = db.insert_document("<a><z/></a>").unwrap();
        assert_eq!(db.query_xpath("/a/z").unwrap(), vec![id]);
    }

    #[test]
    fn update_metrics_and_gauges_track_the_overlay() {
        let mut db = DatabaseBuilder::new()
            .build_from_xml(["<a><b/></a>"])
            .unwrap();
        let snap = db.metrics();
        for name in ["update.insert", "update.remove", "index.compact"] {
            assert!(snap.has_prefix(name), "missing {name}");
        }
        db.insert_document("<a><c/></a>").unwrap();
        db.insert_document("<a><d/></a>").unwrap();
        db.remove_document(0);
        let snap = db.metrics();
        assert_eq!(snap.histogram("update.insert").unwrap().count, 2);
        assert_eq!(snap.histogram("update.remove").unwrap().count, 1);
        assert_eq!(snap.gauge("index.delta.sequences"), Some(2));
        assert_eq!(snap.gauge("index.tombstones"), Some(1));
        db.compact();
        let snap = db.metrics();
        assert_eq!(snap.histogram("index.compact").unwrap().count, 1);
        assert_eq!(snap.gauge("index.delta.sequences"), Some(0));
        assert_eq!(snap.gauge("index.tombstones"), Some(0));
    }

    #[test]
    fn inline_tier_merges_fold_runs_and_keep_answers() {
        let mut db = DatabaseBuilder::new()
            .sequencing(Sequencing::DepthFirst)
            .memtable_limit(1)
            .tier_ratio(2)
            .build_from_xml(["<a><b/></a>"])
            .unwrap();
        for i in 0..8 {
            db.insert_document(&format!("<a><b/><c{i}/></a>")).unwrap();
        }
        // limit 1 / ratio 2 is a binary counter: 8 single-sequence runs
        // cascade into popcount(8) = 1 published run.
        assert_eq!(db.index().delta().run_count(), 1);
        assert_eq!(db.index().delta().sequence_count(), 8);
        let snap = db.metrics();
        assert!(
            snap.histogram("index.merge").unwrap().count >= 7,
            "7 binary-counter merges expected, saw {}",
            snap.histogram("index.merge").unwrap().count
        );
        assert_eq!(snap.gauge("index.delta.runs"), Some(1));
        let names: Vec<&str> = db.events().events().iter().map(|e| e.name).collect();
        assert!(names.contains(&"compact.tier.start"), "{names:?}");
        assert!(names.contains(&"compact.tier.finish"), "{names:?}");
        assert_eq!(db.query_xpath("/a/b").unwrap().len(), 9);
        assert_eq!(db.query_xpath("/a/c3").unwrap(), vec![4]);
        assert!(db.verify_integrity().is_clean());
    }

    #[test]
    fn background_merge_worker_folds_runs() {
        let mut db = DatabaseBuilder::new()
            .sequencing(Sequencing::DepthFirst)
            .memtable_limit(1)
            .tier_ratio(2)
            .background_merge(std::time::Duration::from_millis(1))
            .build_from_xml(["<a><b/></a>"])
            .unwrap();
        assert!(db.has_background_merge());
        for i in 0..8 {
            db.insert_document(&format!("<a><c{i}/></a>")).unwrap();
        }
        // The worker fires every 1 ms; wait for it to quiesce the tiers.
        let deadline = Instant::now() + Duration::from_secs(10);
        while db.index().delta().merge_due() && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(!db.index().delta().merge_due(), "worker never caught up");
        assert!(db.index().delta().run_count() <= 2);
        assert_eq!(db.index().delta().sequence_count(), 8);
        let snap = db.metrics();
        assert!(snap.counter("health.merge.heartbeat") > 0, "worker beats");
        assert!(db.tick_merge_watchdog().is_empty(), "worker not stalled");
        assert_eq!(db.query_xpath("/a/c5").unwrap(), vec![6]);
        assert!(db.verify_integrity().is_clean());
    }

    #[test]
    fn merge_time_has_its_own_phase_family() {
        let mut db = DatabaseBuilder::new()
            .sequencing(Sequencing::DepthFirst)
            .memtable_limit(1)
            .tier_ratio(2)
            .build_from_xml(["<a><b/></a>"])
            .unwrap();
        for i in 0..4 {
            db.insert_document(&format!("<a><c{i}/></a>")).unwrap();
        }
        db.compact();
        let snap = db.metrics();
        let merges = snap.histogram("index.merge").unwrap().count;
        assert!(merges >= 3, "binary-counter merges before compaction");
        // Merge latency lives in its own family: compaction's single
        // sample does not absorb (double-count) the merge spans.
        assert_eq!(snap.histogram("index.compact").unwrap().count, 1);
        let collapsed = db.phase_profile().to_collapsed();
        assert!(
            collapsed
                .lines()
                .any(|l| l.starts_with("update;index.merge ")),
            "merge frame missing:\n{collapsed}"
        );
        assert!(
            collapsed
                .lines()
                .any(|l| l.starts_with("update;index.compact ")),
            "compact frame missing:\n{collapsed}"
        );
        let profile = db.phase_profile();
        let merge_entry = profile
            .entries
            .iter()
            .find(|e| e.stack.last() == Some(&"index.merge"))
            .expect("index.merge is in PHASE_TREE");
        assert_eq!(merge_entry.samples, merges, "one sample per tier merge");
    }

    #[test]
    fn compaction_replays_the_tier_knobs() {
        let mut db = DatabaseBuilder::new()
            .sequencing(Sequencing::DepthFirst)
            .memtable_limit(2)
            .tier_ratio(2)
            .build_from_xml(["<a><b/></a>"])
            .unwrap();
        assert_eq!(db.index().delta().memtable_limit(), 2);
        db.insert_document("<a><c/></a>").unwrap();
        db.insert_document("<a><d/></a>").unwrap();
        assert_eq!(db.index().delta().run_count(), 1, "cut at limit 2");
        db.compact();
        assert_eq!(db.index().delta().memtable_limit(), 2, "knobs survive");
        assert_eq!(db.index().delta().tier_ratio(), 2);
        db.insert_document("<a><e/></a>").unwrap();
        db.insert_document("<a><f/></a>").unwrap();
        assert_eq!(db.index().delta().run_count(), 1, "cut again post-compact");
        assert_eq!(db.query_xpath("/a/f").unwrap(), vec![4]);
    }

    #[test]
    fn compact_on_pristine_database_is_a_clean_rebuild() {
        let mut db = DatabaseBuilder::new()
            .build_from_xml(["<a><b/></a>", "<a><c/></a>"])
            .unwrap();
        let before = db.query_xpath("//b").unwrap();
        let report = db.compact();
        assert_eq!(report.docs_before, 2);
        assert_eq!(report.docs_after, 2);
        assert_eq!(db.query_xpath("//b").unwrap(), before);
        assert!(db.verify_integrity().is_clean());
    }

    #[test]
    fn hashed_value_mode_survives_compaction() {
        let mut db = DatabaseBuilder::new()
            .value_mode(ValueMode::Hashed { range: 64 })
            .build_from_xml(["<a><l>boston</l></a>", "<a><l>newyork</l></a>"])
            .unwrap();
        db.insert_document("<a><l>austin</l></a>").unwrap();
        db.remove_document(1);
        db.compact();
        // Hashed ids are stateless, so the surviving values still match.
        assert!(db.query_xpath("/a/l[text='boston']").unwrap().contains(&0));
        assert!(db.query_xpath("/a/l[text='austin']").unwrap().contains(&1));
        assert!(db.verify_integrity().is_clean());
    }

    #[test]
    fn chars_value_mode_survives_compaction() {
        let mut db = DatabaseBuilder::new()
            .value_mode(ValueMode::Chars)
            .build_from_xml(["<a><l>bo</l></a>", "<a><l>ny</l></a>"])
            .unwrap();
        db.insert_document("<a><l>at</l></a>").unwrap();
        db.remove_document(0);
        db.compact();
        let reference = DatabaseBuilder::new()
            .value_mode(ValueMode::Chars)
            .build_from_xml(["<a><l>ny</l></a>", "<a><l>at</l></a>"])
            .unwrap();
        assert!(db.index().trie().identical_to(reference.index().trie()));
        assert!(db.verify_integrity().is_clean());
    }

    #[test]
    fn hashed_value_mode() {
        let db = DatabaseBuilder::new()
            .value_mode(ValueMode::Hashed { range: 64 })
            .build_from_xml(["<a><l>boston</l></a>", "<a><l>newyork</l></a>"])
            .unwrap();
        let hits = db.query_xpath("/a/l[text='boston']").unwrap();
        // hashed designators may collide, but boston's own document is
        // always included
        assert!(hits.contains(&0));
    }

    /// The scripted history: a mix of classified hits, a provably-empty
    /// query (no classes → unclassified), and repeats.
    const WORKLOAD_SCRIPT: [&str; 6] = [
        "/project//loc",
        "/project/research",
        "/project//loc",
        "/nosuchroot",
        "//loc[text='boston']",
        "/project/research/loc",
    ];

    fn workload_db() -> Database {
        DatabaseBuilder::new()
            .build_from_xml([
                "<project><research><loc>newyork</loc></research></project>",
                "<project><develop><loc>boston</loc></develop></project>",
                "<project><research><loc>boston</loc><fund/></research></project>",
            ])
            .unwrap()
    }

    #[test]
    fn workload_profile_is_reproduced_by_replaying_the_history() {
        let db = workload_db();
        // replay: rebuild the profile from the outcomes themselves
        let mut replay = WorkloadProfile::new();
        for expr in WORKLOAD_SCRIPT {
            let out = db.query_xpath_full(expr).unwrap();
            replay.record(&out.classes, out.docs.len() as u64, 1);
        }
        let live = db.workload_profile();
        // Latency is wall time (nondeterministic); every other field of the
        // profile must match the replay exactly.
        assert_eq!(live.queries(), replay.queries());
        assert_eq!(live.queries(), WORKLOAD_SCRIPT.len() as u64);
        assert_eq!(live.unclassified(), replay.unclassified());
        assert!(live.unclassified() >= 1, "/nosuchroot is unclassified");
        assert_eq!(live.len(), replay.len());
        assert!(live.len() >= 2, "research and loc classes are distinct");
        for (class, stats) in replay.iter() {
            let l = live.class(class).expect("replayed class exists live");
            assert_eq!(l.queries, stats.queries, "class {class:?} frequency");
            assert_eq!(l.results, stats.results, "class {class:?} cardinality");
            assert!(l.latency_ns > 0, "live profile carries wall time");
            assert_eq!(live.frequency(class), replay.frequency(class));
        }
        // and the profile round-trips through JSON
        let back = WorkloadProfile::from_json(&live.to_json()).unwrap();
        assert_eq!(back.queries(), live.queries());
        assert_eq!(back.len(), live.len());
    }

    #[test]
    fn workload_metrics_track_the_profiler() {
        let db = workload_db();
        for expr in WORKLOAD_SCRIPT {
            db.query_xpath(expr).unwrap();
        }
        let snap = db.metrics();
        assert_eq!(
            snap.counter("workload.queries"),
            WORKLOAD_SCRIPT.len() as u64
        );
        assert_eq!(
            snap.counter("workload.unclassified"),
            db.workload_profile().unclassified()
        );
        assert_eq!(
            snap.gauge("workload.classes"),
            Some(db.workload_profile().len() as i64)
        );
    }

    #[test]
    fn profiling_off_keeps_the_family_at_zero() {
        let db = DatabaseBuilder::new()
            .profiling(false)
            .build_from_xml(["<a><b/></a>"])
            .unwrap();
        db.query_xpath("/a/b").unwrap();
        assert!(db.workload_profile().is_empty());
        assert_eq!(db.workload_profile().queries(), 0);
        // the family still exists in the snapshot, pinned at zero
        let snap = db.metrics();
        assert_eq!(snap.counter("workload.queries"), 0);
        assert_eq!(snap.gauge("workload.classes"), Some(0));
    }

    #[test]
    fn take_workload_profile_starts_a_fresh_epoch() {
        let db = workload_db();
        db.query_xpath("/project//loc").unwrap();
        let epoch1 = db.take_workload_profile();
        assert_eq!(epoch1.queries(), 1);
        assert!(db.workload_profile().is_empty());
        db.query_xpath("/project/research").unwrap();
        assert_eq!(db.workload_profile().queries(), 1);
    }

    #[test]
    fn explain_carries_the_stats_tail() {
        let db = workload_db();
        let out = db.query_xpath_full("/project//loc").unwrap();
        let text = out.explain();
        assert!(text.contains("stats:"), "missing stats tail: {text}");
        assert!(text.contains("results 3"), "cardinality in tail: {text}");
        assert!(text.contains("classes ["), "class ids in tail: {text}");
        assert!(
            text.contains("descents/variant ["),
            "descent counts in tail: {text}"
        );
        assert!(!out.classes.is_empty());
        assert!(out.descents.iter().sum::<u64>() > 0);
    }

    #[test]
    fn stats_report_shape_memory_and_workload() {
        let db = workload_db();
        db.query_xpath("/project//loc").unwrap();
        let stats = db.stats();
        assert_eq!(stats.docs, 3);
        assert!(stats.paths >= 5, "ε, project, research, develop, loc, …");
        assert!(stats.index.frozen.nodes > 0);
        assert_eq!(stats.index.frozen.sequences, 3);
        assert!(stats.memory.corpus_bytes > 0);
        assert!(stats.memory.index_bytes > 0);
        assert_eq!(
            stats.memory.total_bytes(),
            stats.memory.corpus_bytes + stats.memory.index_bytes
        );
        assert_eq!(stats.workload.queries(), 1);
        // stats() refreshed the memory gauges
        let snap = db.metrics();
        assert_eq!(
            snap.gauge("memory.corpus.bytes"),
            Some(stats.memory.corpus_bytes as i64)
        );
        assert_eq!(
            snap.gauge("memory.index.bytes"),
            Some(stats.memory.index_bytes as i64)
        );
        assert_eq!(
            snap.gauge("memory.total.bytes"),
            Some(stats.memory.total_bytes() as i64)
        );
        let text = stats.render();
        for needle in [
            "database: 3 docs",
            "memory:",
            "pool:",
            "workload: 1 queries",
        ] {
            assert!(text.contains(needle), "render misses {needle:?}:\n{text}");
        }
    }

    #[test]
    fn stats_see_the_delta_overlay() {
        let mut db = workload_db();
        db.insert_document("<project><audit/></project>").unwrap();
        db.remove_document(0);
        let stats = db.stats();
        assert_eq!(stats.index.delta.sequences, 1);
        assert_eq!(stats.index.tombstones, 1);
        db.compact();
        let stats = db.stats();
        assert_eq!(stats.index.delta.sequences, 0);
        assert_eq!(stats.index.tombstones, 0);
        assert_eq!(stats.docs, 3);
    }
}
