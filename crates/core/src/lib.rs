//! # xseq — sequence-based XML indexing via constraint sequences
//!
//! A from-scratch implementation of Wang & Meng, *On the Sequencing of Tree
//! Structures for XML Indexing* (ICDE 2005): XML documents and queries are
//! transformed into **constraint sequences** of path-encoded nodes, and
//! structured queries are answered *holistically* through constraint
//! subsequence matching — no join operations, no per-document
//! post-processing, no false alarms:
//!
//! ```text
//! Tree Pattern ⇒ P(Doc Ids)
//! ```
//!
//! ## Quick start
//!
//! ```
//! use xseq::{Database, DatabaseBuilder, Sequencing};
//!
//! let mut db = DatabaseBuilder::new()
//!     .sequencing(Sequencing::Probability) // the paper's g_best
//!     .build_from_xml([
//!         "<project><research><loc>newyork</loc></research></project>",
//!         "<project><develop><loc>boston</loc></develop></project>",
//!     ])
//!     .unwrap();
//!
//! let hits = db.query_xpath("/project//loc[text='boston']").unwrap();
//! assert_eq!(hits, vec![1]);
//! ```
//!
//! ## Crate map
//!
//! * [`xml`] — documents, parsing, designators, path encoding, patterns,
//!   the brute-force ground-truth matcher.
//! * [`sequence`] — constraints (`f1`, forward prefix `f2`), the Theorem 1
//!   decoder, sequencing strategies (DF/BF/Random/probability-ordered),
//!   Prüfer codes, isomorphic expansion.
//! * [`schema`] — occurrence probabilities `p(C|root)` (estimated or
//!   declared) and query-tuning weights `w(C)` (Eq. 6).
//! * [`index`] — the trie + path-link index, Algorithm 1 and the order-free
//!   `tree_search`, wildcard planning.
//! * [`query`] — the XPath-subset parser.
//! * [`storage`] — 4 KiB pages, buffer pool, the disk layout (`TrieView`
//!   over pages) used for the I/O experiments.
//! * [`telemetry`] — lock-free counters/gauges/latency histograms, the
//!   named [`MetricsRegistry`] behind [`Database::metrics`], and the
//!   snapshot exporters (`to_json`, `render_table`).
//! * [`baselines`] — DataGuide-, XISS- and ViST-style comparators.
//! * [`datagen`] — deterministic synthetic / DBLP-like / XMark-like
//!   workload generators and the paper's query sets.
//!
//! ## Observability
//!
//! Every database owns a [`MetricsRegistry`]; each [`Database::query_xpath`]
//! records per-phase latency (`query.parse`, `index.plan`,
//! `sequence.encode`, `index.search`) and work counters, document ingestion
//! records `xml.parse`, and paged storage mirrors its page traffic into
//! `storage.pool.*`.  [`Database::metrics`] returns a [`Snapshot`];
//! [`QueryOutcome::explain`] renders one query's work breakdown.
#![forbid(unsafe_code)]

pub use xseq_baselines as baselines;
pub use xseq_datagen as datagen;
pub use xseq_exec as exec;
pub use xseq_index as index;
pub use xseq_query as query;
pub use xseq_schema as schema;
pub use xseq_sequence as sequence;
pub use xseq_storage as storage;
pub use xseq_telemetry as telemetry;
pub use xseq_xml as xml;

pub use xseq_exec::Pool;
pub use xseq_index::{
    IndexTelemetry, IntegrityReport, InvariantClass, PlanOptions, QueryContext, QueryOutcome,
    QueryStats, SearchStats, Violation, XmlIndex,
};
pub use xseq_query::{parse_xpath, parse_xpath_readonly, ParseError};
pub use xseq_schema::{ProbabilityModel, SchemaTree, WeightMap};
pub use xseq_sequence::{PriorityMap, Sequence, Strategy};
pub use xseq_storage::{BufferPool, PagedTrie, PoolStats, PoolTelemetry};
pub use xseq_telemetry::{
    MetricsRegistry, Snapshot, SpanTimer, Trace, TraceConfig, TraceId, TraceSpan, Tracer,
};
pub use xseq_xml::{
    Axis, Corpus, DocId, Document, PathId, PathTable, PatternLabel, SymbolTable, TreePattern,
    ValueMode, XmlError,
};

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use xseq_telemetry::Histogram;

/// Unified error type for the high-level API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// XML parsing failed.
    Xml(XmlError),
    /// Query parsing failed.
    Query(ParseError),
    /// The database has no documents.
    EmptyDatabase,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Xml(e) => write!(f, "xml: {e}"),
            Error::Query(e) => write!(f, "query: {e}"),
            Error::EmptyDatabase => write!(f, "no documents to index"),
        }
    }
}

impl std::error::Error for Error {}

impl From<XmlError> for Error {
    fn from(e: XmlError) -> Self {
        Error::Xml(e)
    }
}

impl From<ParseError> for Error {
    fn from(e: ParseError) -> Self {
        Error::Query(e)
    }
}

/// Which sequencing strategy the database uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sequencing {
    /// Canonical depth-first (ViST's ordering).
    DepthFirst,
    /// The paper's performance-oriented `g_best`: probability-ordered
    /// constraint sequences, with probabilities estimated by sampling.
    Probability,
}

/// Builder for a [`Database`].
#[derive(Debug)]
pub struct DatabaseBuilder {
    sequencing: Sequencing,
    value_mode: ValueMode,
    plan: PlanOptions,
    sample_cap: usize,
    boosts: Vec<(String, f64)>,
    registry: Arc<MetricsRegistry>,
    trace: Option<TraceConfig>,
    spot_check_rate: f64,
    threads: usize,
}

impl Default for DatabaseBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl DatabaseBuilder {
    /// A builder with the paper's defaults: probability sequencing, exact
    /// value interning.
    pub fn new() -> Self {
        DatabaseBuilder {
            sequencing: Sequencing::Probability,
            value_mode: ValueMode::Intern,
            plan: PlanOptions::default(),
            sample_cap: 0,
            boosts: Vec::new(),
            registry: Arc::new(MetricsRegistry::new()),
            trace: None,
            spot_check_rate: 0.0,
            threads: 1,
        }
    }

    /// Sets the worker count for ingest (parallel parse, sequencing, and
    /// index freeze) and for [`Database::query_batch`].  The built index is
    /// bit-identical to a single-threaded build at any thread count; 1 (the
    /// default) runs everything in place with no thread traffic.
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n.max(1);
        self
    }

    /// Enables sampled post-query integrity spot checks: after roughly
    /// `rate` of all queries (deterministic fixed-point sampling, no RNG)
    /// the index's structural invariants are re-verified and the report
    /// lands in [`QueryOutcome::integrity`] — rendered by
    /// [`QueryOutcome::explain`].  Off by default (`rate = 0.0`); the spot
    /// check is the cheap structure-only pass, not the full per-sequence
    /// round-trip of [`Database::verify_integrity`].
    pub fn integrity_spot_check(mut self, rate: f64) -> Self {
        self.spot_check_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Enables per-query tracing with the given policy: every
    /// [`Database::query_xpath_full`] call records a span tree, slow
    /// queries land in [`Database::slow_queries`], and a
    /// [`TraceConfig::sample_rate`] fraction of all queries in
    /// [`Database::recent_traces`].  Without this call queries run
    /// untraced, at zero tracing cost.
    pub fn trace_config(mut self, config: TraceConfig) -> Self {
        self.trace = Some(config);
        self
    }

    /// Shares an external registry (e.g. [`MetricsRegistry::global`])
    /// instead of the private one each builder creates.
    pub fn metrics_registry(mut self, registry: Arc<MetricsRegistry>) -> Self {
        self.registry = registry;
        self
    }

    /// Chooses the sequencing strategy.
    pub fn sequencing(mut self, s: Sequencing) -> Self {
        self.sequencing = s;
        self
    }

    /// Chooses how attribute/text values become designators.
    pub fn value_mode(mut self, m: ValueMode) -> Self {
        self.value_mode = m;
        self
    }

    /// Caps how many documents the probability estimator samples
    /// (0 = all).
    pub fn sample_cap(mut self, cap: usize) -> Self {
        self.sample_cap = cap;
        self
    }

    /// Overrides the planner caps.
    pub fn plan_options(mut self, plan: PlanOptions) -> Self {
        self.plan = plan;
        self
    }

    /// Boosts the sequencing weight `w(C)` of the node addressed by a simple
    /// slash path (e.g. `"/site/item/location"`) — the paper's tunable
    /// mechanism for frequently queried, highly selective elements.
    pub fn boost(mut self, path: &str, weight: f64) -> Self {
        self.boosts.push((path.to_owned(), weight));
        self
    }

    /// Parses and indexes the given XML documents.
    ///
    /// With [`DatabaseBuilder::threads`] above 1, parsing fans out across
    /// the pool: each worker interns into a private clone of the symbol
    /// table, and the per-chunk deltas are absorbed back in document order,
    /// replaying the sequential first-occurrence interning exactly — the
    /// corpus (ids, interners, documents) is identical to a serial parse.
    pub fn build_from_xml<'a>(
        self,
        xmls: impl IntoIterator<Item = &'a str>,
    ) -> Result<Database, Error> {
        let mut corpus = Corpus::new(self.value_mode);
        corpus.attach_parse_histogram(self.registry.histogram("xml.parse"));
        let pool = Pool::new(self.threads);
        if pool.is_sequential() {
            for xml in xmls {
                corpus.parse_and_push(xml)?;
            }
            return self.build_from_corpus(corpus);
        }
        let xmls: Vec<&str> = xmls.into_iter().collect();
        let base_names = corpus.symbols.designator_count();
        let base_values = corpus.symbols.values.len();
        let chunk = pool.chunk_for(xmls.len());
        let chunks = {
            let base = &corpus.symbols;
            // Workers stop at their first parse error; the serial merge
            // below surfaces the earliest error in document order, exactly
            // like the sequential loop.
            pool.map_chunks(&xmls, chunk, |_, slice| {
                let mut local = base.clone();
                let mut docs = Vec::with_capacity(slice.len());
                for xml in slice {
                    let t0 = std::time::Instant::now();
                    match xseq_xml::parse_document(xml, &mut local) {
                        Ok(doc) => docs.push((doc, t0.elapsed())),
                        Err(e) => return (local, docs, Some(e)),
                    }
                }
                (local, docs, None)
            })
        };
        for (local, docs, err) in chunks {
            let remap = corpus.symbols.absorb_delta(&local, base_names, base_values);
            for (mut doc, parse_time) in docs {
                if !remap.is_identity() {
                    doc.remap_symbols(|s| remap.symbol(s));
                }
                if let Some(h) = &corpus.parse_histogram {
                    h.record_duration(parse_time);
                }
                corpus.push(doc);
            }
            if let Some(e) = err {
                return Err(e.into());
            }
        }
        self.build_from_corpus(corpus)
    }

    /// Indexes an already-built corpus.
    pub fn build_from_corpus(self, mut corpus: Corpus) -> Result<Database, Error> {
        if corpus.is_empty() {
            return Err(Error::EmptyDatabase);
        }
        // Register every pipeline phase up front so a fresh database's
        // snapshot already lists them (at zero), and later inserts through
        // this corpus keep recording xml.parse.
        let parse_hist = self.registry.histogram("query.parse");
        corpus.attach_parse_histogram(self.registry.histogram("xml.parse"));
        let pool_tel = PoolTelemetry::register(&self.registry);
        let strategy = match self.sequencing {
            Sequencing::DepthFirst => Strategy::DepthFirst,
            Sequencing::Probability => {
                let model =
                    ProbabilityModel::estimate(&corpus.docs, &mut corpus.paths, self.sample_cap);
                let mut weights = WeightMap::default();
                for (path, w) in &self.boosts {
                    if let Some(p) = resolve_simple_path(path, &corpus.symbols, &corpus.paths) {
                        weights.set(p, *w);
                    }
                }
                Strategy::Probability(model.priorities(&corpus.paths, &weights))
            }
        };
        let pool = Pool::new(self.threads);
        let index = XmlIndex::build_parallel(
            &corpus.docs,
            &mut corpus.paths,
            strategy,
            self.plan,
            Some(IndexTelemetry::register(&self.registry)),
            &pool,
        );
        Ok(Database {
            corpus,
            index,
            registry: self.registry,
            parse_hist,
            pool_tel,
            tracer: self.trace.map(|c| Arc::new(Tracer::new(c))),
            // 32.32 fixed point: `rate` of all queries fire the spot check.
            spot_step: (self.spot_check_rate * (1u64 << 32) as f64) as u64,
            spot_accum: AtomicU64::new(0),
            pool,
        })
    }
}

/// Resolves `/a/b/c` to an interned path id, if every step exists.
fn resolve_simple_path(path: &str, symbols: &SymbolTable, paths: &PathTable) -> Option<PathId> {
    let mut cur = PathId::ROOT;
    for step in path.split('/').filter(|s| !s.is_empty()) {
        let d = symbols.lookup_designator(step)?;
        cur = paths.child(cur, xseq_xml::Symbol::elem(d))?;
    }
    Some(cur)
}

/// A corpus plus its constraint-sequence index: the top-level handle.
///
/// A built database is `Send + Sync` and all query entry points take
/// `&self`: queries never intern (symbols absent from the tables prove the
/// query empty), so any number of threads may share one database —
/// [`Database::query_batch`] does exactly that on the builder's pool.
/// Mutation ([`Database::insert_xml`]) still requires `&mut self`.
#[derive(Debug)]
pub struct Database {
    /// The indexed documents with their shared interners.
    pub corpus: Corpus,
    index: XmlIndex,
    registry: Arc<MetricsRegistry>,
    parse_hist: Arc<Histogram>,
    /// Registry handles for `storage.pool.*` — read around each traced
    /// query to attach pool-delta attributes (metric deltas) to its trace.
    pool_tel: PoolTelemetry,
    tracer: Option<Arc<Tracer>>,
    /// Per-query increment of the 32.32 fixed-point sampling accumulator;
    /// 0 disables the spot check entirely.
    spot_step: u64,
    spot_accum: AtomicU64,
    /// Worker pool for batch queries (and the ingest that built this
    /// database), sized by [`DatabaseBuilder::threads`].
    pool: Pool,
}

// Compile-time guarantee behind the concurrency model: one frozen database
// is shareable across threads as-is.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Database>();
};

impl Database {
    /// Answers an XPath-subset query with document ids.
    pub fn query_xpath(&self, expr: &str) -> Result<Vec<DocId>, Error> {
        Ok(self.query_xpath_full(expr)?.docs)
    }

    /// Like [`Database::query_xpath`] but returns the work counters too —
    /// and, when the database was built with
    /// [`DatabaseBuilder::trace_config`], the query's span tree in
    /// [`QueryOutcome::trace`].
    pub fn query_xpath_full(&self, expr: &str) -> Result<QueryOutcome, Error> {
        self.query_xpath_ctx(expr, &mut QueryContext::new())
    }

    /// One query against a caller-owned [`QueryContext`] (scratch reuse);
    /// the batch path runs one context per worker.
    fn query_xpath_ctx(&self, expr: &str, ctx: &mut QueryContext) -> Result<QueryOutcome, Error> {
        let Some(tracer) = self.tracer.clone() else {
            let pattern = xseq_query::parse_xpath_readonly_instrumented(
                expr,
                &self.corpus.symbols,
                &self.parse_hist,
            )?;
            // None: the expression names a symbol no indexed document
            // contains — provably empty, no descent needed.
            let mut out = match &pattern {
                Some(p) => self.index.query_with(p, &self.corpus.paths, ctx),
                None => QueryOutcome::default(),
            };
            self.maybe_spot_check(&mut out);
            return Ok(out);
        };
        let mut active = tracer.begin(expr);
        let pool0 = (self.pool_tel.hits.get(), self.pool_tel.misses.get());
        let pattern = match xseq_query::parse_xpath_readonly_traced(
            expr,
            &self.corpus.symbols,
            &self.parse_hist,
            &mut active,
        ) {
            Ok(p) => p,
            Err(e) => {
                // a failed parse still finishes its trace: the time was
                // spent, and a slow failure is still a slow query
                active.root_attr("error", e.to_string());
                tracer.finish(active);
                return Err(e.into());
            }
        };
        let mut out = match &pattern {
            Some(p) => self.index.query_traced(p, &self.corpus.paths, &mut active),
            None => QueryOutcome::default(),
        };
        out.stats.pool_hits = self.pool_tel.hits.get().saturating_sub(pool0.0);
        out.stats.pool_misses = self.pool_tel.misses.get().saturating_sub(pool0.1);
        active.root_attr("docs", out.docs.len() as u64);
        active.root_attr("candidates", out.stats.search.candidates);
        active.root_attr("pool_hits", out.stats.pool_hits);
        active.root_attr("pool_misses", out.stats.pool_misses);
        self.maybe_spot_check(&mut out);
        if let Some(report) = &out.integrity {
            active.root_attr("integrity", report.summary());
        }
        out.trace = Some(tracer.finish(active));
        Ok(out)
    }

    /// Answers many XPath queries on the builder's worker pool, returning
    /// one result per expression in input order.  Equivalent to (and, on a
    /// sequential pool, literally) a serial `query_xpath` loop; workers
    /// share the database read-only and reuse one [`QueryContext`] per
    /// chunk.
    pub fn query_batch(&self, exprs: &[&str]) -> Vec<Result<Vec<DocId>, Error>> {
        let chunk = self.pool.chunk_for(exprs.len());
        self.pool
            .map_chunks(exprs, chunk, |_, slice| {
                let mut ctx = QueryContext::new();
                slice
                    .iter()
                    .map(|expr| Ok(self.query_xpath_ctx(expr, &mut ctx)?.docs))
                    .collect::<Vec<_>>()
            })
            .into_iter()
            .flatten()
            .collect()
    }

    /// Fires the sampled post-query integrity spot check when the
    /// fixed-point accumulator crosses an integer boundary (exactly `rate`
    /// of all queries, deterministically — concurrent queries each claim a
    /// disjoint accumulator window, so the rate holds under sharing too).
    fn maybe_spot_check(&self, out: &mut QueryOutcome) {
        if self.spot_step == 0 {
            return;
        }
        // relaxed: the accumulator is a pure sampling counter; each query
        // claims its window with the RMW alone and no other memory is
        // published through it.
        let prev = self.spot_accum.fetch_add(self.spot_step, Ordering::Relaxed);
        if (prev.wrapping_add(self.spot_step) >> 32) != (prev >> 32) {
            out.integrity = Some(self.index.verify_structure());
        }
    }

    /// Full integrity verification of the index: preorder-label nesting and
    /// subtree extents, path-link order and coverage, sibling-cover
    /// bookkeeping, the end-node registry, and every distinct stored
    /// constraint sequence's `f2` validity (Eq. 3) and Theorem 1 round-trip.
    ///
    /// Exhaustive — intended for `repro --verify`, tests, and offline
    /// checks, not the query hot path (see
    /// [`DatabaseBuilder::integrity_spot_check`] for the sampled in-band
    /// variant).
    pub fn verify_integrity(&mut self) -> IntegrityReport {
        let Database { index, corpus, .. } = self;
        index.verify_integrity(&mut corpus.paths)
    }

    /// The tracer behind this database's per-query tracing, if enabled.
    pub fn tracer(&self) -> Option<&Arc<Tracer>> {
        self.tracer.as_ref()
    }

    /// The slow-query log: every query whose wall time met
    /// [`TraceConfig::slow_threshold`], oldest first, each with its full
    /// span tree, the serialized query expression (the trace name), and
    /// metric deltas as root-span attributes.  Empty when tracing is off.
    pub fn slow_queries(&self) -> Vec<Arc<Trace>> {
        self.tracer
            .as_ref()
            .map_or_else(Vec::new, |t| t.slow_queries())
    }

    /// The head-sampled recent traces, oldest first.  Empty when tracing is
    /// off.
    pub fn recent_traces(&self) -> Vec<Arc<Trace>> {
        self.tracer
            .as_ref()
            .map_or_else(Vec::new, |t| t.recent_traces())
    }

    /// A point-in-time snapshot of every pipeline metric: the `xml.parse`,
    /// `sequence.encode`, `query.parse`, `index.plan`, `index.search` and
    /// `storage.pool.*` phases plus the matcher work counters.
    pub fn metrics(&self) -> Snapshot {
        self.registry.snapshot()
    }

    /// The registry behind [`Database::metrics`], shareable with pools and
    /// external reporting (see [`DatabaseBuilder::metrics_registry`]).
    pub fn metrics_registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// `storage.pool.*` counter handles, for attaching to a
    /// [`BufferPool`] or [`PagedTrie`] serving this database's index.
    pub fn pool_telemetry(&self) -> PoolTelemetry {
        PoolTelemetry::register(&self.registry)
    }

    /// Answers a pre-built tree pattern.
    pub fn query_pattern(&self, pattern: &TreePattern) -> QueryOutcome {
        self.index.query(pattern, &self.corpus.paths)
    }

    /// The worker pool shared by ingest and [`Database::query_batch`].
    pub fn pool(&self) -> Pool {
        self.pool
    }

    /// Adds one more document and refreshes the index labels.
    pub fn insert_xml(&mut self, xml: &str) -> Result<DocId, Error> {
        let id = self.corpus.parse_and_push(xml)?;
        let doc = &self.corpus.docs[id as usize];
        self.index.insert(doc, id, &mut self.corpus.paths);
        self.index.refresh();
        Ok(id)
    }

    /// The underlying index.
    pub fn index(&self) -> &XmlIndex {
        &self.index
    }

    /// Number of indexed documents.
    pub fn len(&self) -> usize {
        self.corpus.len()
    }

    /// True when the database holds no documents (never, post-build).
    pub fn is_empty(&self) -> bool {
        self.corpus.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quickstart_flow() {
        let db = DatabaseBuilder::new()
            .build_from_xml([
                "<project><research><loc>newyork</loc></research></project>",
                "<project><develop><loc>boston</loc></develop></project>",
            ])
            .unwrap();
        assert_eq!(db.len(), 2);
        assert_eq!(
            db.query_xpath("/project//loc[text='boston']").unwrap(),
            vec![1]
        );
        assert_eq!(db.query_xpath("//loc").unwrap(), vec![0, 1]);
        assert_eq!(db.query_xpath("/project/research").unwrap(), vec![0]);
    }

    #[test]
    fn depth_first_database() {
        let db = DatabaseBuilder::new()
            .sequencing(Sequencing::DepthFirst)
            .build_from_xml(["<a><b/></a>", "<a><c/></a>"])
            .unwrap();
        assert_eq!(db.query_xpath("/a/b").unwrap(), vec![0]);
    }

    #[test]
    fn empty_database_is_an_error() {
        assert_eq!(
            DatabaseBuilder::new().build_from_xml([]).err(),
            Some(Error::EmptyDatabase)
        );
    }

    #[test]
    fn bad_xml_and_bad_query_errors() {
        let err = DatabaseBuilder::new().build_from_xml(["<a>"]).unwrap_err();
        assert!(matches!(err, Error::Xml(_)));
        let db = DatabaseBuilder::new().build_from_xml(["<a/>"]).unwrap();
        assert!(matches!(db.query_xpath("a"), Err(Error::Query(_))));
    }

    #[test]
    fn insert_then_query() {
        let mut db = DatabaseBuilder::new()
            .build_from_xml(["<a><b/></a>"])
            .unwrap();
        let id = db.insert_xml("<a><c/></a>").unwrap();
        assert_eq!(id, 1);
        assert_eq!(db.query_xpath("/a/c").unwrap(), vec![1]);
    }

    #[test]
    fn boost_changes_sequences_not_answers() {
        let xmls = ["<p><a><x/></a><b/></p>", "<p><a/><b/></p>", "<p><b/></p>"];
        let plain = DatabaseBuilder::new().build_from_xml(xmls).unwrap();
        let boosted = DatabaseBuilder::new()
            .boost("/p/a/x", 100.0)
            .build_from_xml(xmls)
            .unwrap();
        for q in ["/p/a", "/p/b", "/p/a/x", "//x"] {
            assert_eq!(
                plain.query_xpath(q).unwrap(),
                boosted.query_xpath(q).unwrap(),
                "{q}"
            );
        }
    }

    #[test]
    fn metrics_contain_every_pipeline_phase() {
        let db = DatabaseBuilder::new()
            .build_from_xml(["<a><b>x</b></a>", "<a><c/></a>"])
            .unwrap();
        db.query_xpath("/a/b").unwrap();
        let snap = db.metrics();
        for phase in [
            "xml.parse",
            "sequence.encode",
            "query.parse",
            "index.plan",
            "index.search",
            "storage.pool",
        ] {
            assert!(snap.has_prefix(phase), "missing phase {phase}");
        }
        // ingestion and the query each left latency samples behind
        assert_eq!(snap.histogram("xml.parse").unwrap().count, 2);
        assert_eq!(snap.histogram("query.parse").unwrap().count, 1);
        assert_eq!(snap.histogram("index.plan").unwrap().count, 1);
        assert_eq!(snap.histogram("index.search").unwrap().count, 1);
        // sequence.encode sampled at build (2 docs) and at query (1)
        assert_eq!(snap.histogram("sequence.encode").unwrap().count, 3);
        assert!(snap.counter("index.search.candidates") > 0);
    }

    #[test]
    fn query_phases_accumulate_and_delta() {
        let mut db = DatabaseBuilder::new()
            .build_from_xml(["<a><b/></a>"])
            .unwrap();
        let before = db.metrics();
        db.query_xpath("/a/b").unwrap();
        db.query_xpath("//b").unwrap();
        let delta = db.metrics().delta(&before);
        assert_eq!(delta.histogram("index.search").unwrap().count, 2);
        assert_eq!(delta.histogram("query.parse").unwrap().count, 2);
        // insert_xml keeps recording xml.parse through the same histogram
        db.insert_xml("<a><c/></a>").unwrap();
        assert_eq!(db.metrics().histogram("xml.parse").unwrap().count, 2);
    }

    #[test]
    fn shared_registry_across_databases() {
        let reg = std::sync::Arc::new(MetricsRegistry::new());
        let db1 = DatabaseBuilder::new()
            .metrics_registry(reg.clone())
            .build_from_xml(["<a><b/></a>"])
            .unwrap();
        let db2 = DatabaseBuilder::new()
            .metrics_registry(reg.clone())
            .build_from_xml(["<a><c/></a>"])
            .unwrap();
        db1.query_xpath("/a/b").unwrap();
        db2.query_xpath("/a/c").unwrap();
        assert_eq!(reg.snapshot().histogram("index.search").unwrap().count, 2);
    }

    #[test]
    fn pool_telemetry_reaches_database_registry() {
        use xseq_storage::{write_paged_trie, MemStore, PagedTrie};
        let mut db = DatabaseBuilder::new()
            .build_from_xml(["<a><b/></a>", "<a><c/></a>"])
            .unwrap();
        let mut store = MemStore::new();
        write_paged_trie(db.index().trie(), &mut store).unwrap();
        let paged = PagedTrie::open(store, 4).unwrap();
        paged.attach_pool_telemetry(db.pool_telemetry());
        let pattern = parse_xpath("/a/b", &mut db.corpus.symbols).unwrap();
        let strategy = db.index().strategy().clone();
        for qdoc in xseq_index::instantiate(
            &pattern,
            &db.corpus.paths,
            db.index().data_paths(),
            db.index().options(),
        ) {
            let qs =
                xseq_index::QuerySequence::from_document(&qdoc, &mut db.corpus.paths, &strategy);
            let _ = xseq_index::tree_search(&paged, &qs);
        }
        let snap = db.metrics();
        assert!(snap.counter("storage.pool.misses") > 0);
        let st = paged.pool_stats();
        assert_eq!(
            st.hits + st.misses,
            snap.counter("storage.pool.hits") + snap.counter("storage.pool.misses")
        );
        assert!(st.hit_ratio().is_some());
    }

    #[test]
    fn traced_query_lands_in_slow_log() {
        let db = DatabaseBuilder::new()
            .trace_config(TraceConfig {
                sample_rate: 1.0,
                slow_threshold: std::time::Duration::ZERO,
                recent_capacity: 8,
                slow_capacity: 8,
            })
            .build_from_xml(["<a><b>x</b></a>", "<a><c/></a>"])
            .unwrap();
        let out = db.query_xpath_full("/a/b").unwrap();
        let trace = out.trace.clone().expect("tracing is on");
        assert!(trace.slow && trace.sampled);
        let names: Vec<&str> = trace.spans.iter().map(|s| s.name).collect();
        for n in [
            "query",
            "query.parse",
            "index.plan",
            "sequence.encode",
            "trie.descent",
            "search.link_probes",
        ] {
            assert!(names.contains(&n), "{n} missing from {names:?}");
        }
        // every child is bracketed by its parent
        for s in &trace.spans {
            if let Some(p) = s.parent {
                let parent = trace.span(p);
                assert!(parent.start_ns <= s.start_ns && s.end_ns <= parent.end_ns);
            }
        }
        let slow = db.slow_queries();
        assert_eq!(slow.len(), 1);
        assert_eq!(slow[0].name, "/a/b", "serialized query retained");
        assert_eq!(slow[0].id, trace.id);
        let json = slow[0].to_chrome_json();
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(
            out.explain().contains("trie.descent"),
            "explain shows spans"
        );
        assert_eq!(db.recent_traces().len(), 1);
        assert!(db.tracer().unwrap().stats().started >= 1);
    }

    #[test]
    fn untraced_database_has_no_tracing_surface() {
        let db = DatabaseBuilder::new().build_from_xml(["<a/>"]).unwrap();
        let out = db.query_xpath_full("/a").unwrap();
        assert!(out.trace.is_none());
        assert!(db.slow_queries().is_empty());
        assert!(db.recent_traces().is_empty());
        assert!(db.tracer().is_none());
    }

    #[test]
    fn failed_parse_still_traces() {
        let db = DatabaseBuilder::new()
            .trace_config(TraceConfig {
                sample_rate: 0.0,
                slow_threshold: std::time::Duration::ZERO,
                recent_capacity: 4,
                slow_capacity: 4,
            })
            .build_from_xml(["<a/>"])
            .unwrap();
        assert!(db.query_xpath("not an xpath").is_err());
        let slow = db.slow_queries();
        assert_eq!(slow.len(), 1);
        assert!(slow[0].root().attrs.iter().any(|(k, _)| *k == "error"));
    }

    #[test]
    fn verify_integrity_is_clean_for_built_databases() {
        // Single document, then a few more — both strategies.
        for seq in [Sequencing::DepthFirst, Sequencing::Probability] {
            let mut db = DatabaseBuilder::new()
                .sequencing(seq)
                .build_from_xml(["<a><b>x</b></a>"])
                .unwrap();
            let report = db.verify_integrity();
            assert!(report.is_clean(), "{seq:?} single doc: {}", report.render());
            db.insert_xml("<a><c/><c><d/></c></a>").unwrap();
            db.insert_xml("<a><b>y</b><c/></a>").unwrap();
            let report = db.verify_integrity();
            assert!(report.is_clean(), "{seq:?} grown: {}", report.render());
            assert!(report.sequences_checked >= 2);
        }
    }

    #[test]
    fn spot_check_fires_at_the_configured_rate() {
        let db = DatabaseBuilder::new()
            .integrity_spot_check(0.5)
            .build_from_xml(["<a><b/></a>"])
            .unwrap();
        let mut fired = 0;
        for _ in 0..10 {
            let out = db.query_xpath_full("/a/b").unwrap();
            if let Some(report) = &out.integrity {
                assert!(report.is_clean(), "{}", report.render());
                assert!(out.explain().contains("integrity: clean"));
                fired += 1;
            }
        }
        assert_eq!(fired, 5, "fixed-point sampling is exact");
    }

    #[test]
    fn spot_check_is_off_by_default() {
        let db = DatabaseBuilder::new().build_from_xml(["<a/>"]).unwrap();
        for _ in 0..5 {
            assert!(db.query_xpath_full("/a").unwrap().integrity.is_none());
        }
    }

    #[test]
    fn spot_check_reaches_traced_queries() {
        let db = DatabaseBuilder::new()
            .integrity_spot_check(1.0)
            .trace_config(TraceConfig {
                sample_rate: 1.0,
                slow_threshold: std::time::Duration::ZERO,
                recent_capacity: 4,
                slow_capacity: 4,
            })
            .build_from_xml(["<a><b/></a>"])
            .unwrap();
        let out = db.query_xpath_full("/a/b").unwrap();
        assert!(out.integrity.as_ref().is_some_and(|r| r.is_clean()));
        let trace = out.trace.expect("tracing is on");
        assert!(
            trace.root().attrs.iter().any(|(k, _)| *k == "integrity"),
            "spot-check summary lands on the trace root"
        );
    }

    #[test]
    fn hashed_value_mode() {
        let db = DatabaseBuilder::new()
            .value_mode(ValueMode::Hashed { range: 64 })
            .build_from_xml(["<a><l>boston</l></a>", "<a><l>newyork</l></a>"])
            .unwrap();
        let hits = db.query_xpath("/a/l[text='boston']").unwrap();
        // hashed designators may collide, but boston's own document is
        // always included
        assert!(hits.contains(&0));
    }
}
