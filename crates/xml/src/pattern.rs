//! Tree patterns — the paper's first-class query unit.
//!
//! A [`TreePattern`] models a structured XML query: a tree of node tests
//! connected by child (`/`) or descendant (`//`) axes, with element names,
//! the `*` wildcard, and value tests at the leaves.  The XPath query
//! `/Project[Research[Loc=newyork]]/Develop[Loc=boston]` from Section 3.1 is
//! one such pattern.
//!
//! Patterns are the input to *every* query engine in this repository: the
//! constraint-sequence index, the naïve/ViST matcher, the DataGuide and XISS
//! baselines, and the brute-force ground-truth matcher in [`crate::matcher`].

use crate::symbol::{Designator, SymbolTable, ValueId};

/// Node test of one pattern node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PatternLabel {
    /// A named element (designator equality).
    Elem(Designator),
    /// The `*` wildcard: any element (never matches value leaves).
    AnyElem,
    /// A value test: matches a value-designator leaf.
    Value(ValueId),
}

/// Axis connecting a pattern node to its pattern parent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Axis {
    /// `/` — the matched node is a direct child of the parent's match.
    Child,
    /// `//` — the matched node is a proper descendant of the parent's match
    ///   (for the pattern root: any node of the document).
    Descendant,
}

/// Index of a node within a [`TreePattern`].
pub type PatternNodeId = u32;

#[derive(Debug, Clone, PartialEq, Eq)]
struct PatternNode {
    label: PatternLabel,
    axis: Axis,
    parent: Option<PatternNodeId>,
    children: Vec<PatternNodeId>,
}

/// A structured query tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreePattern {
    nodes: Vec<PatternNode>,
}

impl TreePattern {
    /// Creates a pattern whose root must match the document root (`/label`).
    pub fn root(label: PatternLabel) -> Self {
        Self::with_root_axis(label, Axis::Child)
    }

    /// Creates a pattern whose root may match anywhere (`//label`) or only at
    /// the document root (`/label`).
    pub fn with_root_axis(label: PatternLabel, axis: Axis) -> Self {
        TreePattern {
            nodes: vec![PatternNode {
                label,
                axis,
                parent: None,
                children: Vec::new(),
            }],
        }
    }

    /// Adds a child node test under `parent`.
    ///
    /// # Panics
    /// Panics if `parent` is out of bounds, or if an element test is added
    /// under a value test (value nodes may only chain further value nodes —
    /// the `Chars` representation).
    pub fn add(&mut self, parent: PatternNodeId, axis: Axis, label: PatternLabel) -> PatternNodeId {
        assert!(
            (parent as usize) < self.nodes.len(),
            "pattern parent out of bounds"
        );
        assert!(
            !matches!(self.nodes[parent as usize].label, PatternLabel::Value(_))
                || matches!(label, PatternLabel::Value(_)),
            "value tests are leaves (except value chains)"
        );
        let id = self.nodes.len() as PatternNodeId;
        self.nodes.push(PatternNode {
            label,
            axis,
            parent: Some(parent),
            children: Vec::new(),
        });
        self.nodes[parent as usize].children.push(id);
        id
    }

    /// The root node id (always 0).
    pub fn root_id(&self) -> PatternNodeId {
        0
    }

    /// Number of node tests.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Patterns always have a root.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The node test at `n`.
    // PANIC-FREE: PatternNodeIds are only minted by this pattern's builder
    pub fn label(&self, n: PatternNodeId) -> PatternLabel {
        self.nodes[n as usize].label
    }

    /// The axis connecting `n` to its parent (for the root: to the document).
    // PANIC-FREE: builder-minted PatternNodeId contract (see `label`)
    pub fn axis(&self, n: PatternNodeId) -> Axis {
        self.nodes[n as usize].axis
    }

    /// The pattern parent of `n`.
    // PANIC-FREE: builder-minted PatternNodeId contract (see `label`)
    pub fn parent(&self, n: PatternNodeId) -> Option<PatternNodeId> {
        self.nodes[n as usize].parent
    }

    /// Children of `n` in insertion order.
    // PANIC-FREE: builder-minted PatternNodeId contract (see `label`)
    pub fn children(&self, n: PatternNodeId) -> &[PatternNodeId] {
        &self.nodes[n as usize].children
    }

    /// Iterates all node ids (parents before children).
    pub fn node_ids(&self) -> impl Iterator<Item = PatternNodeId> {
        0..self.nodes.len() as PatternNodeId
    }

    /// True when the pattern uses no wildcard label or descendant axis, i.e.
    /// every node's root path is fully determined.
    pub fn is_exact(&self) -> bool {
        self.node_ids()
            .all(|n| self.label(n) != PatternLabel::AnyElem && self.axis(n) == Axis::Child)
    }

    /// Renders the pattern as an XPath-ish string for diagnostics.
    pub fn render(&self, symbols: &SymbolTable) -> String {
        let mut out = String::new();
        self.render_node(self.root_id(), symbols, &mut out);
        out
    }

    fn render_node(&self, n: PatternNodeId, symbols: &SymbolTable, out: &mut String) {
        out.push_str(match self.axis(n) {
            Axis::Child => "/",
            Axis::Descendant => "//",
        });
        match self.label(n) {
            PatternLabel::Elem(d) => out.push_str(symbols.name(d)),
            PatternLabel::AnyElem => out.push('*'),
            PatternLabel::Value(v) => {
                let rendered = symbols
                    .values
                    .resolve(v)
                    .map(|s| format!("'{s}'"))
                    .unwrap_or_else(|| format!("v#{}", v.0));
                out.push_str(&rendered);
            }
        }
        for &c in self.children(n) {
            if self.children(n).len() > 1 || self.label(c) == self.label(n) {
                out.push('[');
                self.render_node(c, symbols, out);
                out.push(']');
            } else {
                self.render_node(c, symbols, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::SymbolTable;

    #[test]
    fn build_pattern() {
        let mut st = SymbolTable::default();
        let p = st.designator("Project");
        let r = st.designator("Research");
        let loc = st.designator("Loc");
        let ny = st.values.intern("newyork");

        let mut q = TreePattern::root(PatternLabel::Elem(p));
        let rn = q.add(q.root_id(), Axis::Child, PatternLabel::Elem(r));
        let ln = q.add(rn, Axis::Child, PatternLabel::Elem(loc));
        q.add(ln, Axis::Child, PatternLabel::Value(ny));

        assert_eq!(q.len(), 4);
        assert!(q.is_exact());
        assert_eq!(q.children(q.root_id()), &[1]);
        assert_eq!(q.parent(3), Some(2));
    }

    #[test]
    fn wildcards_make_pattern_inexact() {
        let mut st = SymbolTable::default();
        let p = st.designator("P");
        let mut q = TreePattern::root(PatternLabel::Elem(p));
        assert!(q.is_exact());
        q.add(q.root_id(), Axis::Descendant, PatternLabel::AnyElem);
        assert!(!q.is_exact());

        let q2 = TreePattern::with_root_axis(PatternLabel::Elem(p), Axis::Descendant);
        assert!(!q2.is_exact());
    }

    #[test]
    #[should_panic(expected = "value tests are leaves")]
    fn value_nodes_cannot_have_element_children() {
        let mut st = SymbolTable::default();
        let p = st.designator("P");
        let v = st.values.intern("x");
        let mut q = TreePattern::root(PatternLabel::Elem(p));
        let vn = q.add(q.root_id(), Axis::Child, PatternLabel::Value(v));
        q.add(vn, Axis::Child, PatternLabel::Elem(p));
    }

    #[test]
    fn value_chains_are_allowed() {
        let mut st = SymbolTable::default();
        let p = st.designator("P");
        let a = st.values.intern("b");
        let b = st.values.intern("o");
        let mut q = TreePattern::root(PatternLabel::Elem(p));
        let v1 = q.add(q.root_id(), Axis::Child, PatternLabel::Value(a));
        let v2 = q.add(v1, Axis::Child, PatternLabel::Value(b));
        assert_eq!(q.parent(v2), Some(v1));
    }

    #[test]
    fn render_is_readable() {
        let mut st = SymbolTable::default();
        let p = st.designator("Project");
        let r = st.designator("Research");
        let mut q = TreePattern::root(PatternLabel::Elem(p));
        q.add(q.root_id(), Axis::Descendant, PatternLabel::Elem(r));
        assert_eq!(q.render(&st), "/Project//Research");
    }
}
