//! Arena-based document trees.
//!
//! A [`Document`] is the paper's unit of indexing: one record (a DBLP
//! publication, an XMark substructure, a synthetic tree).  Nodes are stored
//! in a flat arena in **preorder**, labelled by [`Symbol`]s; values appear as
//! leaf nodes exactly as the paper draws them (Figure 1: `boston` is a child
//! node of `L`).

use crate::error::XmlError;
use crate::path::{PathId, PathTable};
use crate::symbol::Symbol;

/// Index of a node within one [`Document`]'s arena.
pub type NodeId = u32;

#[derive(Debug, Clone, PartialEq, Eq)]
struct Node {
    sym: Symbol,
    parent: Option<NodeId>,
    children: Vec<NodeId>,
}

/// One XML record, modelled as an unordered labelled tree.
///
/// Construction keeps the arena in preorder (parents before children), which
/// the sequencing layer relies on for cheap traversals.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Document {
    nodes: Vec<Node>,
}

impl Document {
    /// Creates an empty document (no root yet).
    pub fn new() -> Self {
        Document { nodes: Vec::new() }
    }

    /// Creates a document with a root node.
    pub fn with_root(sym: Symbol) -> Self {
        let mut d = Document::new();
        d.nodes.push(Node {
            sym,
            parent: None,
            children: Vec::new(),
        });
        d
    }

    /// The root node id, if the document is non-empty.
    pub fn root(&self) -> Option<NodeId> {
        if self.nodes.is_empty() {
            None
        } else {
            Some(0)
        }
    }

    /// The root node id, or [`XmlError::EmptyDocument`] when the document
    /// has no nodes.
    ///
    /// Prefer this over `root().unwrap()` when handling caller-supplied
    /// documents: the error names the condition instead of panicking on a
    /// bare `Option`.
    pub fn require_root(&self) -> Result<NodeId, XmlError> {
        self.root().ok_or(XmlError::EmptyDocument)
    }

    /// Appends a child labelled `sym` under `parent`.
    ///
    /// # Errors
    /// Returns [`XmlError::NodeOutOfBounds`] if `parent` does not exist.
    pub fn add_child(&mut self, parent: NodeId, sym: Symbol) -> Result<NodeId, XmlError> {
        if parent as usize >= self.nodes.len() {
            return Err(XmlError::NodeOutOfBounds { node: parent });
        }
        let id = self.nodes.len() as NodeId;
        self.nodes.push(Node {
            sym,
            parent: Some(parent),
            children: Vec::new(),
        });
        // PANIC-FREE: parent < nodes.len() was checked at entry
        self.nodes[parent as usize].children.push(id);
        Ok(id)
    }

    /// Infallible `add_child` for builder-style code that tracks ids itself.
    ///
    /// # Panics
    /// Panics if `parent` does not exist.
    pub fn child(&mut self, parent: NodeId, sym: Symbol) -> NodeId {
        // PANIC-FREE: the documented contract — builder callers pass ids
        // this document handed out, so add_child cannot reject them
        self.add_child(parent, sym).expect("parent node must exist")
    }

    /// The label of a node.
    // PANIC-FREE: NodeIds are only minted by this arena; stale ids are a
    // caller bug the accessor contract documents as out of scope
    #[inline]
    pub fn sym(&self, n: NodeId) -> Symbol {
        self.nodes[n as usize].sym
    }

    /// The parent of a node (`None` for the root).
    // PANIC-FREE: same arena-minted NodeId contract as `sym`
    #[inline]
    pub fn parent(&self, n: NodeId) -> Option<NodeId> {
        self.nodes[n as usize].parent
    }

    /// Children of a node, in document order.
    // PANIC-FREE: same arena-minted NodeId contract as `sym`
    #[inline]
    pub fn children(&self, n: NodeId) -> &[NodeId] {
        &self.nodes[n as usize].children
    }

    /// Number of nodes (elements + values).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True for a document without a root.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Iterates node ids in arena (preorder-compatible) order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        0..self.nodes.len() as NodeId
    }

    /// Preorder traversal from the root (depth-first, children in document
    /// order).  For documents built through [`Document::add_child`] this is
    /// *not* necessarily `0..len` because siblings may have been appended
    /// after a subtree was extended, so we walk the tree properly.
    pub fn preorder(&self) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.nodes.len());
        let Some(root) = self.root() else {
            return out;
        };
        let mut stack = vec![root];
        while let Some(n) = stack.pop() {
            out.push(n);
            // push children reversed so the leftmost is visited first
            for &c in self.children(n).iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// Depth of a node (root = 1, matching path-encoding length).
    pub fn depth(&self, n: NodeId) -> u16 {
        let mut d = 1;
        let mut cur = n;
        while let Some(p) = self.parent(cur) {
            d += 1;
            cur = p;
        }
        d
    }

    /// Height of the tree (max depth over nodes; 0 when empty).
    pub fn height(&self) -> u16 {
        self.node_ids().map(|n| self.depth(n)).max().unwrap_or(0)
    }

    /// Computes the path encoding of every node against a shared
    /// [`PathTable`], returning `paths[node] = PathId`.
    ///
    /// This is the paper's node encoding: node `n` is represented by the
    /// designator path from the root to `n`.
    pub fn path_encode(&self, paths: &mut PathTable) -> Vec<PathId> {
        let mut out = vec![PathId::ROOT; self.nodes.len()];
        for n in self.preorder() {
            // PANIC-FREE: preorder yields ids < nodes.len() == out.len()
            let parent_path = match self.parent(n) {
                Some(p) => out[p as usize],
                None => PathId::ROOT,
            };
            // PANIC-FREE: same preorder id bound as above
            out[n as usize] = paths.extend(parent_path, self.sym(n));
        }
        out
    }

    /// Rewrites every node label through `f` — used by parallel ingest to
    /// move a worker-parsed document from its local symbol namespace into
    /// the merged one, and by compaction to re-intern surviving documents
    /// into fresh tables.
    ///
    /// Nodes are visited in arena order, which for parsed documents is the
    /// parse encounter order — so a *stateful* `f` that interns into a fresh
    /// table replays the original first-occurrence interning order exactly.
    pub fn remap_symbols(&mut self, mut f: impl FnMut(Symbol) -> Symbol) {
        for node in &mut self.nodes {
            node.sym = f(node.sym);
        }
    }

    /// Read-only [`Document::path_encode`]: resolves every node's path
    /// against an immutable [`PathTable`], returning `None` as soon as a
    /// node's path is absent from the table.
    ///
    /// This is the shared-read counterpart used at query time: the table
    /// was populated when the data was indexed, so a miss proves the node
    /// (and therefore any query built from it) cannot match any indexed
    /// document.
    pub fn path_encode_readonly(&self, paths: &PathTable) -> Option<Vec<PathId>> {
        let mut out = vec![PathId::ROOT; self.nodes.len()];
        for n in self.preorder() {
            // PANIC-FREE: preorder yields ids < nodes.len() == out.len()
            let parent_path = match self.parent(n) {
                Some(p) => out[p as usize],
                None => PathId::ROOT,
            };
            // PANIC-FREE: same preorder id bound as above
            out[n as usize] = paths.child(parent_path, self.sym(n))?;
        }
        Some(out)
    }

    /// True if `a` is a proper ancestor of `b` in this document.
    pub fn is_ancestor(&self, a: NodeId, b: NodeId) -> bool {
        let mut cur = self.parent(b);
        while let Some(p) = cur {
            if p == a {
                return true;
            }
            cur = self.parent(p);
        }
        false
    }

    /// Structural (unordered) equality: same shape and labels regardless of
    /// sibling order.  Used by round-trip tests, since constraint sequences
    /// only determine trees up to sibling order (Theorem 1 concerns the
    /// *structure*, and XML data trees here are unordered).
    pub fn structurally_eq(&self, other: &Document) -> bool {
        match (self.root(), other.root()) {
            (None, None) => true,
            (Some(a), Some(b)) => self.len() == other.len() && canon(self, a) == canon(other, b),
            _ => false,
        }
    }
}

/// Heap attribution for a document: the node arena plus every node's child
/// list.
impl xseq_telemetry::HeapSize for Document {
    fn heap_bytes(&self) -> usize {
        self.nodes.capacity() * std::mem::size_of::<Node>()
            + self
                .nodes
                .iter()
                .map(|n| n.children.capacity() * std::mem::size_of::<NodeId>())
                .sum::<usize>()
    }
}

/// Canonical form of a subtree: label + sorted canonical forms of children.
fn canon(doc: &Document, n: NodeId) -> Vec<u8> {
    let mut kids: Vec<Vec<u8>> = doc.children(n).iter().map(|&c| canon(doc, c)).collect();
    kids.sort();
    let mut out = Vec::with_capacity(8 + kids.iter().map(Vec::len).sum::<usize>());
    out.extend_from_slice(&doc.sym(n).raw().to_le_bytes());
    out.push(b'(');
    for k in kids {
        out.extend_from_slice(&k);
        out.push(b',');
    }
    out.push(b')');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::{SymbolTable, ValueMode};

    fn sample() -> (SymbolTable, Document) {
        // Figure 3(b): P(v0, D(L(v1)), D(M(v2)))
        let mut st = SymbolTable::with_value_mode(ValueMode::Intern);
        let p = st.elem("P");
        let d = st.elem("D");
        let l = st.elem("L");
        let m = st.elem("M");
        let v0 = st.val("xml");
        let v1 = st.val("boston");
        let v2 = st.val("johnson");

        let mut doc = Document::with_root(p);
        let root = doc.root().unwrap();
        doc.child(root, v0);
        let d1 = doc.child(root, d);
        let l1 = doc.child(d1, l);
        doc.child(l1, v1);
        let d2 = doc.child(root, d);
        let m1 = doc.child(d2, m);
        doc.child(m1, v2);
        (st, doc)
    }

    #[test]
    fn build_and_navigate() {
        let (_, doc) = sample();
        assert_eq!(doc.len(), 8);
        let root = doc.root().unwrap();
        assert_eq!(doc.children(root).len(), 3);
        assert_eq!(doc.parent(root), None);
        assert_eq!(doc.height(), 4);
        assert_eq!(doc.depth(root), 1);
    }

    #[test]
    fn preorder_visits_all_parents_first() {
        let (_, doc) = sample();
        let order = doc.preorder();
        assert_eq!(order.len(), doc.len());
        let pos: std::collections::HashMap<_, _> =
            order.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        for n in doc.node_ids() {
            if let Some(p) = doc.parent(n) {
                assert!(pos[&p] < pos[&n], "parent after child in preorder");
            }
        }
    }

    #[test]
    fn path_encoding_matches_paper() {
        let (_, doc) = sample();
        let mut paths = PathTable::new();
        let enc = doc.path_encode(&mut paths);
        // Two identical sibling D element nodes must share the same PathId.
        let root = doc.root().unwrap();
        let d_children: Vec<_> = doc
            .node_ids()
            .filter(|&n| doc.parent(n) == Some(root) && doc.sym(n).is_elem())
            .collect();
        assert_eq!(d_children.len(), 2);
        assert_eq!(enc[d_children[0] as usize], enc[d_children[1] as usize]);
        // No node is encoded by the empty path.
        assert!(enc.iter().all(|&p| p != PathId::ROOT));
        // Path depth equals node depth.
        for n in doc.node_ids() {
            assert_eq!(paths.depth(enc[n as usize]), doc.depth(n));
        }
    }

    #[test]
    fn require_root_distinguishes_empty_documents() {
        let empty = Document::new();
        assert_eq!(empty.require_root(), Err(XmlError::EmptyDocument));
        let (_, doc) = sample();
        assert_eq!(doc.require_root(), Ok(0));
    }

    #[test]
    fn ancestor_test() {
        let (_, doc) = sample();
        let root = doc.root().unwrap();
        for n in doc.node_ids().skip(1) {
            assert!(doc.is_ancestor(root, n));
        }
        assert!(!doc.is_ancestor(root, root));
        assert!(!doc.is_ancestor(3, 1));
    }

    #[test]
    fn structural_equality_ignores_sibling_order() {
        let mut st = SymbolTable::default();
        let p = st.elem("P");
        let a = st.elem("A");
        let b = st.elem("B");

        let mut d1 = Document::with_root(p);
        let r = d1.root().unwrap();
        d1.child(r, a);
        d1.child(r, b);

        let mut d2 = Document::with_root(p);
        let r = d2.root().unwrap();
        d2.child(r, b);
        d2.child(r, a);

        assert!(d1.structurally_eq(&d2));

        let mut d3 = Document::with_root(p);
        let r = d3.root().unwrap();
        d3.child(r, a);
        d3.child(r, a);
        assert!(!d1.structurally_eq(&d3));
    }

    #[test]
    fn figure5_isomorphic_forms_are_structurally_equal() {
        // Figure 5: P(L(S), L(B)) in both orders.
        let mut st = SymbolTable::default();
        let p = st.elem("P");
        let l = st.elem("L");
        let s = st.elem("S");
        let b = st.elem("B");

        let mut d1 = Document::with_root(p);
        let r = d1.root().unwrap();
        let l1 = d1.child(r, l);
        d1.child(l1, s);
        let l2 = d1.child(r, l);
        d1.child(l2, b);

        let mut d2 = Document::with_root(p);
        let r = d2.root().unwrap();
        let l1 = d2.child(r, l);
        d2.child(l1, b);
        let l2 = d2.child(r, l);
        d2.child(l2, s);

        assert!(d1.structurally_eq(&d2));
    }

    #[test]
    fn add_child_rejects_bad_parent() {
        let mut st = SymbolTable::default();
        let p = st.elem("P");
        let mut d = Document::with_root(p);
        assert!(d.add_child(99, p).is_err());
    }
}
