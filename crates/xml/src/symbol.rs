//! Designators and value symbols.
//!
//! The paper designates "each element and attribute name in an XML document
//! by a designator" (`P` for `Project`, ...), and maps attribute values to
//! value designators, either through a hash function (ViST option 1:
//! `v1 = h('boston')`) or by spelling them out character by character
//! (option 2, Index-Fabric-style).  This module implements both element-name
//! interning and the value schemes.

use std::collections::HashMap;
use xseq_telemetry::HeapSize;

/// An interned element or attribute name.
///
/// Designators are dense small integers, suitable for direct array indexing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Designator(pub u32);

/// An interned (or hashed) attribute/text value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ValueId(pub u32);

/// A node label: either an element designator or a value designator.
///
/// Packed into a single `u32` with the high bit discriminating values, so a
/// `Symbol` is as cheap to store and compare as a plain integer — path
/// encodings and sequences hold millions of these.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

const VALUE_BIT: u32 = 1 << 31;

impl Symbol {
    /// Wraps an element designator.
    #[inline]
    pub fn elem(d: Designator) -> Symbol {
        debug_assert!(d.0 < VALUE_BIT);
        Symbol(d.0)
    }

    /// Wraps a value designator.
    #[inline]
    pub fn value(v: ValueId) -> Symbol {
        debug_assert!(v.0 < VALUE_BIT);
        Symbol(v.0 | VALUE_BIT)
    }

    /// True if this symbol is a value designator.
    #[inline]
    pub fn is_value(self) -> bool {
        self.0 & VALUE_BIT != 0
    }

    /// True if this symbol is an element designator.
    #[inline]
    pub fn is_elem(self) -> bool {
        !self.is_value()
    }

    /// Returns the element designator, if this is one.
    #[inline]
    pub fn as_elem(self) -> Option<Designator> {
        if self.is_elem() {
            Some(Designator(self.0))
        } else {
            None
        }
    }

    /// Returns the value designator, if this is one.
    #[inline]
    pub fn as_value(self) -> Option<ValueId> {
        if self.is_value() {
            Some(ValueId(self.0 & !VALUE_BIT))
        } else {
            None
        }
    }

    /// Raw packed representation (stable; used by the storage layer).
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Rebuilds a symbol from its packed representation.
    #[inline]
    pub fn from_raw(raw: u32) -> Symbol {
        Symbol(raw)
    }
}

/// How attribute/text values are turned into value designators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ValueMode {
    /// Every distinct string gets its own [`ValueId`] (exact; reversible).
    #[default]
    Intern,
    /// Values are hashed into a bounded range (`v = h(s) mod range`), ViST's
    /// scheme.  Models the paper's "hash function with a range of 1000":
    /// distinct strings may collide, which trades false positives for a
    /// bounded designator universe.  Not reversible.
    Hashed {
        /// Size of the hash range (the paper uses 1000 for person names).
        range: u32,
    },
    /// The paper's second representation: a value becomes a *chain* of
    /// per-character value nodes ("`boston` by `b,o,s,t,o,n`",
    /// Index-Fabric-style), terminated by [`ValueTable::END`].  This lets
    /// subsequence matching reach *inside* attribute values: a chain prefix
    /// is a starts-with query, a chain ending in the terminator is exact
    /// equality.
    Chars,
}

/// Interner for attribute/text values.
///
/// `Clone` supports parallel ingest: workers intern into clones and the
/// deltas (ids past the base length) merge back by resolved string.
#[derive(Debug, Clone)]
pub struct ValueTable {
    mode: ValueMode,
    map: HashMap<String, ValueId>,
    rev: Vec<String>,
}

impl ValueTable {
    /// Creates a value table with the given mode.
    pub fn new(mode: ValueMode) -> Self {
        ValueTable {
            mode,
            map: HashMap::new(),
            rev: Vec::new(),
        }
    }

    /// The configured mode.
    pub fn mode(&self) -> ValueMode {
        self.mode
    }

    /// The terminator string for `Chars` chains (an unused control char).
    pub const END: &'static str = "\u{1F}";

    /// Maps a value string to its designator, allocating one if needed.
    /// In `Chars` mode this interns the *whole string* exactly (the chain
    /// construction is the caller's job via [`ValueTable::chain`]).
    pub fn intern(&mut self, s: &str) -> ValueId {
        match self.mode {
            ValueMode::Intern | ValueMode::Chars => {
                if let Some(&id) = self.map.get(s) {
                    return id;
                }
                let id = ValueId(self.rev.len() as u32);
                self.map.insert(s.to_owned(), id);
                self.rev.push(s.to_owned());
                id
            }
            // PANIC-FREE: the divisor is clamped to at least 1
            ValueMode::Hashed { range } => ValueId(fnv1a(s.as_bytes()) % range.max(1)),
        }
    }

    /// Looks up a value without allocating.  In `Hashed` mode this always
    /// succeeds (the hash is total); in `Intern` mode it returns `None` for
    /// strings never seen — which lets query layers prove a value-equality
    /// predicate can match nothing.
    pub fn lookup(&self, s: &str) -> Option<ValueId> {
        match self.mode {
            ValueMode::Intern | ValueMode::Chars => self.map.get(s).copied(),
            // PANIC-FREE: the divisor is clamped to at least 1
            ValueMode::Hashed { range } => Some(ValueId(fnv1a(s.as_bytes()) % range.max(1))),
        }
    }

    /// Interns a value as a chain of per-character designators followed by
    /// the [`ValueTable::END`] terminator — the `Chars` representation.
    pub fn chain(&mut self, s: &str) -> Vec<ValueId> {
        let mut out = tokenize_value_chars(self, s);
        out.push(self.intern(Self::END));
        out
    }

    /// The chain for a *prefix* query: per-character designators without the
    /// terminator, so matching continues into any value that starts with
    /// `s`.
    pub fn chain_prefix(&mut self, s: &str) -> Vec<ValueId> {
        tokenize_value_chars(self, s)
    }

    /// Read-only [`ValueTable::chain`]: the per-character chain plus
    /// terminator, or `None` when any character (or the terminator) was
    /// never interned — in which case no indexed value can match.
    pub fn chain_readonly(&self, s: &str) -> Option<Vec<ValueId>> {
        let mut out = self.chain_prefix_readonly(s)?;
        out.push(self.lookup(Self::END)?);
        Some(out)
    }

    /// Read-only [`ValueTable::chain_prefix`]: per-character chain without
    /// the terminator, or `None` on the first never-seen character.
    pub fn chain_prefix_readonly(&self, s: &str) -> Option<Vec<ValueId>> {
        let mut buf = [0u8; 4];
        s.chars()
            .map(|c| self.lookup(c.encode_utf8(&mut buf)))
            .collect()
    }

    /// Recovers the string for a designator (`Intern` and `Chars` modes).
    pub fn resolve(&self, v: ValueId) -> Option<&str> {
        match self.mode {
            ValueMode::Intern | ValueMode::Chars => self.rev.get(v.0 as usize).map(String::as_str),
            ValueMode::Hashed { .. } => None,
        }
    }

    /// Number of distinct interned values (0 in `Hashed` mode).
    pub fn len(&self) -> usize {
        self.rev.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.rev.is_empty()
    }
}

/// Tokenizes a value into per-character value symbols — the paper's second
/// value representation ("`boston` by `b,o,s,t,o,n`", Index-Fabric-style),
/// which permits subsequence matching *inside* attribute values.
///
/// Each character is mapped through the same interner so that character
/// symbols and whole-value symbols share one namespace.
pub fn tokenize_value_chars(table: &mut ValueTable, s: &str) -> Vec<ValueId> {
    let mut buf = [0u8; 4];
    s.chars()
        .map(|c| table.intern(c.encode_utf8(&mut buf)))
        .collect()
}

/// 32-bit FNV-1a over bytes; used for hashed value designators.  Chosen for
/// determinism across runs (the index format must not depend on `RandomState`).
fn fnv1a(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in bytes {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// Shared interners for one corpus: element names plus values.
///
/// `Clone` supports parallel ingest: each worker parses into a clone and
/// the new names/values are merged back in document order, reproducing the
/// sequential interning order.
#[derive(Debug, Clone)]
pub struct SymbolTable {
    names: HashMap<String, Designator>,
    names_rev: Vec<String>,
    /// The value interner.
    pub values: ValueTable,
}

impl Default for SymbolTable {
    fn default() -> Self {
        SymbolTable::with_value_mode(ValueMode::Intern)
    }
}

impl SymbolTable {
    /// Creates a symbol table with the given value-designator mode.
    pub fn with_value_mode(mode: ValueMode) -> Self {
        SymbolTable {
            names: HashMap::new(),
            names_rev: Vec::new(),
            values: ValueTable::new(mode),
        }
    }

    /// Interns an element/attribute name.
    pub fn designator(&mut self, name: &str) -> Designator {
        if let Some(&d) = self.names.get(name) {
            return d;
        }
        let d = Designator(self.names_rev.len() as u32);
        self.names.insert(name.to_owned(), d);
        self.names_rev.push(name.to_owned());
        d
    }

    /// Looks up a name without interning.
    pub fn lookup_designator(&self, name: &str) -> Option<Designator> {
        self.names.get(name).copied()
    }

    /// The name behind a designator.
    pub fn name(&self, d: Designator) -> &str {
        &self.names_rev[d.0 as usize]
    }

    /// Number of distinct element names.
    pub fn designator_count(&self) -> usize {
        self.names_rev.len()
    }

    /// Convenience: element symbol for a name.
    pub fn elem(&mut self, name: &str) -> Symbol {
        Symbol::elem(self.designator(name))
    }

    /// Convenience: value symbol for a string.
    pub fn val(&mut self, s: &str) -> Symbol {
        Symbol::value(self.values.intern(s))
    }

    /// Merges the interning delta of `local` — names and values allocated
    /// past `base_names`/`base_values` — into `self`, returning the id
    /// remap from `local`'s namespace into `self`'s.
    ///
    /// `local` must be a clone of `self` taken when `self` held exactly
    /// `base_names` names and `base_values` values (ids below the bases
    /// map to themselves).  Absorbing per-worker deltas **in document
    /// order** replays the sequential first-occurrence interning order, so
    /// a parallel ingest ends with a table byte-identical to the
    /// sequential build's.
    pub fn absorb_delta(
        &mut self,
        local: &SymbolTable,
        base_names: usize,
        base_values: usize,
    ) -> SymbolRemap {
        let names = (base_names..local.designator_count())
            .map(|i| self.designator(local.name(Designator(i as u32))))
            .collect();
        let values = (base_values..local.values.len())
            .map(|i| {
                let s = local
                    .values
                    .resolve(ValueId(i as u32))
                    .expect("interned value ids below len always resolve");
                self.values.intern(s)
            })
            .collect();
        SymbolRemap {
            base_names: base_names as u32,
            base_values: base_values as u32,
            names,
            values,
        }
    }

    /// Renders a symbol for human consumption (used by `Display` impls and
    /// debugging output; hashed values render as `v#<id>`).
    pub fn render(&self, sym: Symbol) -> String {
        match (sym.as_elem(), sym.as_value()) {
            (Some(d), _) => self.name(d).to_owned(),
            (_, Some(v)) => match self.values.resolve(v) {
                Some(s) => format!("'{s}'"),
                None => format!("v#{}", v.0),
            },
            _ => unreachable!(),
        }
    }
}

impl HeapSize for Designator {
    #[inline]
    fn heap_bytes(&self) -> usize {
        0
    }
}

impl HeapSize for ValueId {
    #[inline]
    fn heap_bytes(&self) -> usize {
        0
    }
}

impl HeapSize for Symbol {
    #[inline]
    fn heap_bytes(&self) -> usize {
        0
    }
}

/// Heap attribution for the value interner: the string → id table plus the
/// reverse strings.
impl HeapSize for ValueTable {
    fn heap_bytes(&self) -> usize {
        self.map.heap_bytes() + self.rev.heap_bytes()
    }
}

/// Heap attribution for the symbol interners: names both ways plus values.
impl HeapSize for SymbolTable {
    fn heap_bytes(&self) -> usize {
        self.names.heap_bytes() + self.names_rev.heap_bytes() + self.values.heap_bytes()
    }
}

/// Id remap produced by [`SymbolTable::absorb_delta`]: maps a worker-local
/// designator/value id into the merged table's namespace.
///
/// Ids below the base counts are shared with the merged table and map to
/// themselves; ids at or past the base index into the per-delta vectors.
/// Hashed value ids are stateless (the hash is the id) and never appear in
/// the delta.
#[derive(Debug, Clone)]
pub struct SymbolRemap {
    base_names: u32,
    base_values: u32,
    names: Vec<Designator>,
    values: Vec<ValueId>,
}

impl SymbolRemap {
    /// Maps a local designator into the merged namespace.
    // PANIC-FREE: the remap covers every id the local table minted, and
    // `d >= base` implies `d - base < names.len()` by construction
    pub fn designator(&self, d: Designator) -> Designator {
        if d.0 < self.base_names {
            d
        } else {
            self.names[(d.0 - self.base_names) as usize]
        }
    }

    /// Maps a local value id into the merged namespace.
    pub fn value(&self, v: ValueId) -> ValueId {
        if v.0 < self.base_values {
            v
        } else {
            match self.values.get((v.0 - self.base_values) as usize) {
                Some(&mapped) => mapped,
                // Hashed mode: the interner carries no state, ids are total.
                None => v,
            }
        }
    }

    /// Maps a packed symbol into the merged namespace.
    pub fn symbol(&self, s: Symbol) -> Symbol {
        match (s.as_elem(), s.as_value()) {
            (Some(d), _) => Symbol::elem(self.designator(d)),
            (_, Some(v)) => Symbol::value(self.value(v)),
            _ => unreachable!("a symbol is either an element or a value"),
        }
    }

    /// True when the delta was empty and every id maps to itself.
    pub fn is_identity(&self) -> bool {
        self.names
            .iter()
            .enumerate()
            .all(|(i, d)| d.0 == self.base_names + i as u32)
            && self
                .values
                .iter()
                .enumerate()
                .all(|(i, v)| v.0 == self.base_values + i as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbol_packing_roundtrip() {
        let e = Symbol::elem(Designator(42));
        assert!(e.is_elem());
        assert_eq!(e.as_elem(), Some(Designator(42)));
        assert_eq!(e.as_value(), None);

        let v = Symbol::value(ValueId(7));
        assert!(v.is_value());
        assert_eq!(v.as_value(), Some(ValueId(7)));
        assert_eq!(v.as_elem(), None);

        assert_eq!(Symbol::from_raw(e.raw()), e);
        assert_eq!(Symbol::from_raw(v.raw()), v);
    }

    #[test]
    fn elem_and_value_never_collide() {
        let e = Symbol::elem(Designator(5));
        let v = Symbol::value(ValueId(5));
        assert_ne!(e, v);
    }

    #[test]
    fn interning_is_stable() {
        let mut t = SymbolTable::default();
        let a = t.designator("Project");
        let b = t.designator("Research");
        let a2 = t.designator("Project");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(t.name(a), "Project");
        assert_eq!(t.name(b), "Research");
        assert_eq!(t.designator_count(), 2);
    }

    #[test]
    fn value_interning_exact() {
        let mut t = ValueTable::new(ValueMode::Intern);
        let boston = t.intern("boston");
        let ny = t.intern("newyork");
        assert_ne!(boston, ny);
        assert_eq!(t.intern("boston"), boston);
        assert_eq!(t.resolve(boston), Some("boston"));
        assert_eq!(t.lookup("boston"), Some(boston));
        assert_eq!(t.lookup("nowhere"), None);
    }

    #[test]
    fn value_hashing_is_bounded_and_deterministic() {
        let mut t = ValueTable::new(ValueMode::Hashed { range: 1000 });
        let a = t.intern("boston");
        let b = t.intern("boston");
        assert_eq!(a, b);
        assert!(a.0 < 1000);
        // lookup needs no prior intern in hashed mode
        assert_eq!(t.lookup("never-seen").map(|v| v.0 < 1000), Some(true));
        assert!(t.resolve(a).is_none());
    }

    #[test]
    fn hashed_range_one_maps_everything_together() {
        let mut t = ValueTable::new(ValueMode::Hashed { range: 1 });
        assert_eq!(t.intern("a"), t.intern("b"));
    }

    #[test]
    fn char_tokenization() {
        let mut t = ValueTable::new(ValueMode::Intern);
        let toks = tokenize_value_chars(&mut t, "boston");
        assert_eq!(toks.len(), 6);
        // repeated 'o' maps to the same id
        assert_eq!(toks[1], toks[4]);
        assert_eq!(t.resolve(toks[0]), Some("b"));
    }

    #[test]
    fn absorb_delta_merges_names_and_values_in_order() {
        let mut global = SymbolTable::default();
        global.designator("P");
        global.values.intern("xml");
        let (base_n, base_v) = (global.designator_count(), global.values.len());

        let mut w0 = global.clone();
        let w0_a = w0.designator("A");
        let w0_v = w0.values.intern("boston");
        let mut w1 = global.clone();
        let w1_b = w1.designator("B");
        let w1_a = w1.designator("A"); // duplicated across workers
        let w1_v = w1.values.intern("boston");

        let r0 = global.absorb_delta(&w0, base_n, base_v);
        let r1 = global.absorb_delta(&w1, base_n, base_v);
        assert!(r0.is_identity());
        assert_eq!(r1.designator(w1_a), r0.designator(w0_a));
        assert_eq!(r1.value(w1_v), r0.value(w0_v));
        assert_ne!(r1.designator(w1_b), r1.designator(w1_a));
        assert_eq!(global.name(r1.designator(w1_b)), "B");
        // Pre-existing ids map to themselves.
        assert_eq!(r1.designator(Designator(0)), Designator(0));
        assert_eq!(
            r1.symbol(Symbol::value(ValueId(0))),
            Symbol::value(ValueId(0))
        );
    }

    #[test]
    fn hashed_deltas_are_always_identity() {
        let mut global = SymbolTable::with_value_mode(ValueMode::Hashed { range: 100 });
        let w = global.clone();
        let r = global.absorb_delta(&w, global.designator_count(), global.values.len());
        let id = ValueId(fnv1a(b"anything") % 100);
        assert_eq!(r.value(id), id);
    }

    #[test]
    fn readonly_chains_mirror_interning_chains() {
        let mut t = ValueTable::new(ValueMode::Chars);
        let chain = t.chain("bos");
        assert_eq!(t.chain_readonly("bos"), Some(chain));
        let prefix = t.chain_prefix("bo");
        assert_eq!(t.chain_prefix_readonly("bo"), Some(prefix));
        assert_eq!(t.chain_readonly("box"), None, "x was never interned");
        assert_eq!(t.chain_prefix_readonly("zz"), None);
    }

    #[test]
    fn render_symbols() {
        let mut t = SymbolTable::default();
        let p = t.elem("Project");
        let v = t.val("boston");
        assert_eq!(t.render(p), "Project");
        assert_eq!(t.render(v), "'boston'");
    }
}
