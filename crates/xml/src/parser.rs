//! A small, dependency-free XML parser.
//!
//! Covers the fragment of XML the paper's datasets use: elements, attributes,
//! text content, comments, processing instructions/XML declarations, CDATA,
//! and the five predefined entities.  Namespaces, DTD internal subsets and
//! full spec conformance are out of scope — the goal is a faithful substrate
//! for DBLP/XMark-shaped records, not a validating parser.
//!
//! Mapping to the paper's tree model:
//! * an element becomes an element-designator node;
//! * an attribute `a="v"` becomes a child node `a` with a value-designator
//!   child `v` (attributes and sub-elements are deliberately not
//!   distinguished, as in ViST);
//! * non-whitespace text content becomes a value-designator leaf.

use crate::document::Document;
use crate::error::XmlError;
use crate::symbol::SymbolTable;

/// Parses one XML document into a [`Document`] against the shared interners.
pub fn parse_document(input: &str, symbols: &mut SymbolTable) -> Result<Document, XmlError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        symbols,
    };
    p.skip_misc()?;
    if p.eof() {
        return Err(XmlError::EmptyDocument);
    }
    let mut doc = Document::new();
    p.parse_element(&mut doc, None)?;
    p.skip_misc()?;
    if !p.eof() {
        return Err(XmlError::TrailingContent { offset: p.pos });
    }
    Ok(doc)
}

struct Parser<'a, 'b> {
    bytes: &'a [u8],
    pos: usize,
    symbols: &'b mut SymbolTable,
}

impl<'a, 'b> Parser<'a, 'b> {
    fn eof(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Result<u8, XmlError> {
        let b = self
            .peek()
            .ok_or(XmlError::UnexpectedEof { offset: self.pos })?;
        self.pos += 1;
        Ok(b)
    }

    fn expect(&mut self, b: u8, what: &'static str) -> Result<(), XmlError> {
        let got = self.bump()?;
        if got != b {
            return Err(XmlError::UnexpectedChar {
                offset: self.pos - 1,
                found: got as char,
                expected: what,
            });
        }
        Ok(())
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.peek() {
            if b.is_ascii_whitespace() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    /// Skips whitespace, comments, PIs and the XML declaration between
    /// top-level constructs.
    fn skip_misc(&mut self) -> Result<(), XmlError> {
        loop {
            self.skip_ws();
            if self.starts_with(b"<?") {
                self.skip_until(b"?>")?;
            } else if self.starts_with(b"<!--") {
                self.skip_until(b"-->")?;
            } else if self.starts_with(b"<!DOCTYPE") {
                // Skip a simple DOCTYPE without internal subset brackets.
                self.skip_until(b">")?;
            } else {
                return Ok(());
            }
        }
    }

    fn starts_with(&self, s: &[u8]) -> bool {
        self.bytes[self.pos..].starts_with(s)
    }

    fn skip_until(&mut self, end: &[u8]) -> Result<(), XmlError> {
        while self.pos < self.bytes.len() {
            if self.bytes[self.pos..].starts_with(end) {
                self.pos += end.len();
                return Ok(());
            }
            self.pos += 1;
        }
        Err(XmlError::UnexpectedEof { offset: self.pos })
    }

    fn read_name(&mut self) -> Result<&'a str, XmlError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.' | b':') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(XmlError::UnexpectedChar {
                offset: self.pos,
                found: self.peek().map(|b| b as char).unwrap_or('\0'),
                expected: "a name",
            });
        }
        // SAFETY of from_utf8: name bytes are ASCII by construction.
        Ok(std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii name"))
    }

    fn read_entity(&mut self, out: &mut String) -> Result<(), XmlError> {
        let at = self.pos;
        self.expect(b'&', "'&'")?;
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == b';' {
                break;
            }
            self.pos += 1;
            if self.pos - start > 10 {
                return Err(XmlError::BadEntity { offset: at });
            }
        }
        let name = &self.bytes[start..self.pos];
        self.expect(b';', "';'")?;
        match name {
            b"lt" => out.push('<'),
            b"gt" => out.push('>'),
            b"amp" => out.push('&'),
            b"apos" => out.push('\''),
            b"quot" => out.push('"'),
            _ if name.first() == Some(&b'#') => {
                let code = if name.get(1) == Some(&b'x') {
                    u32::from_str_radix(
                        std::str::from_utf8(&name[2..])
                            .map_err(|_| XmlError::BadEntity { offset: at })?,
                        16,
                    )
                } else {
                    std::str::from_utf8(&name[1..])
                        .map_err(|_| XmlError::BadEntity { offset: at })?
                        .parse()
                };
                let code = code.map_err(|_| XmlError::BadEntity { offset: at })?;
                out.push(char::from_u32(code).ok_or(XmlError::BadEntity { offset: at })?);
            }
            _ => return Err(XmlError::BadEntity { offset: at }),
        }
        Ok(())
    }

    fn read_attr_value(&mut self) -> Result<String, XmlError> {
        let quote = self.bump()?;
        if quote != b'"' && quote != b'\'' {
            return Err(XmlError::UnexpectedChar {
                offset: self.pos - 1,
                found: quote as char,
                expected: "a quote",
            });
        }
        let mut out = String::new();
        loop {
            match self
                .peek()
                .ok_or(XmlError::UnexpectedEof { offset: self.pos })?
            {
                b if b == quote => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'&' => self.read_entity(&mut out)?,
                _ => {
                    let c = self.next_char()?;
                    out.push(c);
                }
            }
        }
    }

    fn next_char(&mut self) -> Result<char, XmlError> {
        let rest =
            std::str::from_utf8(&self.bytes[self.pos..]).map_err(|_| XmlError::UnexpectedChar {
                offset: self.pos,
                found: '\u{FFFD}',
                expected: "valid UTF-8",
            })?;
        let c = rest
            .chars()
            .next()
            .ok_or(XmlError::UnexpectedEof { offset: self.pos })?;
        self.pos += c.len_utf8();
        Ok(c)
    }

    /// Parses `<name attr="v" ...> content </name>` into the document under
    /// `parent` (or as the root when `parent` is `None`).
    fn parse_element(&mut self, doc: &mut Document, parent: Option<u32>) -> Result<(), XmlError> {
        self.expect(b'<', "'<'")?;
        let name = self.read_name()?;
        let sym = self.symbols.elem(name);
        let node = match parent {
            None => {
                *doc = Document::with_root(sym);
                doc.root().expect("Document::with_root always has a root")
            }
            Some(p) => doc.child(p, sym),
        };

        // Attributes.
        loop {
            self.skip_ws();
            match self
                .peek()
                .ok_or(XmlError::UnexpectedEof { offset: self.pos })?
            {
                b'/' => {
                    self.pos += 1;
                    self.expect(b'>', "'>'")?;
                    return Ok(());
                }
                b'>' => {
                    self.pos += 1;
                    break;
                }
                _ => {
                    let aname = self.read_name()?;
                    self.skip_ws();
                    self.expect(b'=', "'='")?;
                    self.skip_ws();
                    let aval = self.read_attr_value()?;
                    let asym = self.symbols.elem(aname);
                    let anode = doc.child(node, asym);
                    attach_value(doc, anode, &aval, self.symbols);
                }
            }
        }

        // Content.
        let mut text = String::new();
        loop {
            if self.eof() {
                return Err(XmlError::UnexpectedEof { offset: self.pos });
            }
            if self.starts_with(b"<!--") {
                self.flush_text(doc, node, &mut text);
                self.skip_until(b"-->")?;
            } else if self.starts_with(b"<![CDATA[") {
                self.pos += b"<![CDATA[".len();
                let start = self.pos;
                self.skip_until(b"]]>")?;
                let seg = &self.bytes[start..self.pos - 3];
                text.push_str(
                    std::str::from_utf8(seg).map_err(|_| XmlError::UnexpectedChar {
                        offset: start,
                        found: '\u{FFFD}',
                        expected: "valid UTF-8 in CDATA",
                    })?,
                );
            } else if self.starts_with(b"<?") {
                self.flush_text(doc, node, &mut text);
                self.skip_until(b"?>")?;
            } else if self.starts_with(b"</") {
                self.flush_text(doc, node, &mut text);
                self.pos += 2;
                let close_at = self.pos;
                let cname = self.read_name()?;
                if cname != name {
                    return Err(XmlError::MismatchedTag {
                        offset: close_at,
                        found: cname.to_owned(),
                        expected: name.to_owned(),
                    });
                }
                self.skip_ws();
                self.expect(b'>', "'>'")?;
                return Ok(());
            } else if self.peek() == Some(b'<') {
                self.flush_text(doc, node, &mut text);
                self.parse_element(doc, Some(node))?;
            } else if self.peek() == Some(b'&') {
                self.read_entity(&mut text)?;
            } else {
                text.push(self.next_char()?);
            }
        }
    }

    /// Emits accumulated non-whitespace text as a value leaf (or chain).
    fn flush_text(&mut self, doc: &mut Document, node: u32, text: &mut String) {
        let trimmed = text.trim();
        if !trimmed.is_empty() {
            attach_value(doc, node, trimmed, self.symbols);
        }
        text.clear();
    }
}

/// Attaches a value under `node` per the symbol table's [`ValueMode`]: a
/// single leaf for `Intern`/`Hashed`, or a terminated per-character chain
/// for `Chars` (the paper's second value representation).
fn attach_value(doc: &mut Document, node: u32, value: &str, symbols: &mut SymbolTable) {
    match symbols.values.mode() {
        xseq_mode
        @ (crate::symbol::ValueMode::Intern | crate::symbol::ValueMode::Hashed { .. }) => {
            let _ = xseq_mode;
            let vsym = symbols.val(value);
            doc.child(node, vsym);
        }
        crate::symbol::ValueMode::Chars => {
            let mut cur = node;
            for v in symbols.values.chain(value) {
                cur = doc.child(cur, crate::symbol::Symbol::value(v));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::{SymbolTable, ValueMode};

    fn st() -> SymbolTable {
        SymbolTable::with_value_mode(ValueMode::Intern)
    }

    #[test]
    fn parse_figure1_document() {
        let xml = r#"
            <Project name="xml">
              <Research>
                <Manager>tom</Manager>
                <Location>newyork</Location>
              </Research>
              <Development>
                <Manager>johnson</Manager>
                <Unit><Manager>mary</Manager><Name>GUI</Name></Unit>
                <Unit><Name>engine</Name></Unit>
                <Location>boston</Location>
              </Development>
            </Project>"#;
        let mut symbols = st();
        let doc = parse_document(xml, &mut symbols).unwrap();
        let root = doc.root().unwrap();
        assert_eq!(symbols.render(doc.sym(root)), "Project");
        // name attribute + Research + Development
        assert_eq!(doc.children(root).len(), 3);
        // 12 elements + 1 attribute node + 8 values
        assert_eq!(doc.len(), 21);
    }

    #[test]
    fn self_closing_and_empty_elements() {
        let mut symbols = st();
        let doc = parse_document("<a><b/><c></c></a>", &mut symbols).unwrap();
        assert_eq!(doc.len(), 3);
        assert_eq!(doc.children(doc.root().unwrap()).len(), 2);
    }

    #[test]
    fn attributes_become_child_nodes() {
        let mut symbols = st();
        let doc = parse_document(r#"<a x="1" y="2"/>"#, &mut symbols).unwrap();
        let root = doc.root().unwrap();
        assert_eq!(doc.children(root).len(), 2);
        for &attr in doc.children(root) {
            assert!(doc.sym(attr).is_elem());
            assert_eq!(doc.children(attr).len(), 1);
            assert!(doc.sym(doc.children(attr)[0]).is_value());
        }
    }

    #[test]
    fn entities_and_cdata() {
        let mut symbols = st();
        let doc = parse_document("<a>&lt;x&gt; &amp; <![CDATA[<raw>]]></a>", &mut symbols).unwrap();
        let root = doc.root().unwrap();
        // text flushed once at the close tag
        assert_eq!(doc.children(root).len(), 1);
        let v = doc.sym(doc.children(root)[0]).as_value().unwrap();
        assert_eq!(symbols.values.resolve(v), Some("<x> & <raw>"));
    }

    #[test]
    fn numeric_entities() {
        let mut symbols = st();
        let doc = parse_document("<a>&#65;&#x42;</a>", &mut symbols).unwrap();
        let root = doc.root().unwrap();
        let v = doc.sym(doc.children(root)[0]).as_value().unwrap();
        assert_eq!(symbols.values.resolve(v), Some("AB"));
    }

    #[test]
    fn declaration_comment_doctype_skipped() {
        let mut symbols = st();
        let xml = "<?xml version=\"1.0\"?><!-- hi --><!DOCTYPE a><a/>";
        assert!(parse_document(xml, &mut symbols).is_ok());
    }

    #[test]
    fn mismatched_tag_is_an_error() {
        let mut symbols = st();
        let err = parse_document("<a></b>", &mut symbols).unwrap_err();
        assert!(matches!(err, XmlError::MismatchedTag { .. }));
    }

    #[test]
    fn trailing_content_is_an_error() {
        let mut symbols = st();
        let err = parse_document("<a/><b/>", &mut symbols).unwrap_err();
        assert!(matches!(err, XmlError::TrailingContent { .. }));
    }

    #[test]
    fn empty_input_is_an_error() {
        let mut symbols = st();
        assert_eq!(
            parse_document("   ", &mut symbols),
            Err(XmlError::EmptyDocument)
        );
    }

    #[test]
    fn unterminated_element_is_an_error() {
        let mut symbols = st();
        assert!(matches!(
            parse_document("<a><b>", &mut symbols),
            Err(XmlError::UnexpectedEof { .. })
        ));
    }

    #[test]
    fn bad_entity_is_an_error() {
        let mut symbols = st();
        assert!(matches!(
            parse_document("<a>&nope;</a>", &mut symbols),
            Err(XmlError::BadEntity { .. })
        ));
    }

    #[test]
    fn whitespace_only_text_is_dropped() {
        let mut symbols = st();
        let doc = parse_document("<a>\n  <b/>\n</a>", &mut symbols).unwrap();
        assert_eq!(doc.len(), 2);
    }
}
