//! Brute-force structure matching — the ground truth for query equivalence.
//!
//! The paper's central claim (Theorems 2 and 3) is that constraint
//! subsequence matching answers exactly the documents containing a query's
//! tree structure.  This module defines that containment relation directly on
//! trees, by backtracking search for an **injective embedding** of the
//! pattern into the document that
//!
//! * preserves labels (with `*` matching any element),
//! * maps `Child`-axis pattern edges to parent-child document edges and
//!   `Descendant`-axis edges to ancestor-descendant relationships, and
//! * maps distinct pattern nodes to distinct document nodes (so the pattern
//!   `P(L(S), L(B))` needs *two* `L` children — Figure 4's false-alarm pair
//!   is distinguished correctly).
//!
//! Exponential in the worst case, tiny in practice (patterns are small);
//! its only jobs are test oracles and the ViST baseline's verification step
//! (standing in for ViST's join phase).

use crate::document::{Document, NodeId};
use crate::pattern::{Axis, PatternLabel, PatternNodeId, TreePattern};

/// True iff `doc` contains the structure described by `pattern`.
pub fn structure_match(pattern: &TreePattern, doc: &Document) -> bool {
    find_embedding(pattern, doc).is_some()
}

/// Finds one embedding of `pattern` into `doc`, returning the document node
/// matched by each pattern node (indexed by [`PatternNodeId`]).
///
/// The search assigns pattern nodes in preorder and backtracks over *every*
/// choice point, so it is complete: a naïve subtree-at-a-time embedder can
/// miss matches when an inner subtree greedily consumes a node a later
/// sibling needs.
pub fn find_embedding(pattern: &TreePattern, doc: &Document) -> Option<Vec<NodeId>> {
    doc.root()?;
    // Pattern node ids are already in parents-before-children order.
    let order: Vec<PatternNodeId> = pattern.node_ids().collect();
    let mut assignment = vec![u32::MAX; pattern.len()];
    let mut used = vec![false; doc.len()];
    if assign(pattern, doc, &order, 0, &mut assignment, &mut used) {
        Some(assignment)
    } else {
        None
    }
}

fn assign(
    pattern: &TreePattern,
    doc: &Document,
    order: &[PatternNodeId],
    k: usize,
    assignment: &mut [NodeId],
    used: &mut [bool],
) -> bool {
    if k == order.len() {
        return true;
    }
    let p = order[k];
    let candidates: Vec<NodeId> = match pattern.parent(p) {
        None => match pattern.axis(p) {
            Axis::Child => vec![doc
                .root()
                .expect("find_embedding returns early on an empty document")],
            Axis::Descendant => doc.preorder(),
        },
        Some(par) => {
            let anchor = assignment[par as usize];
            match pattern.axis(p) {
                Axis::Child => doc.children(anchor).to_vec(),
                Axis::Descendant => descendants(doc, anchor),
            }
        }
    };
    for cand in candidates {
        if !used[cand as usize] && label_matches(pattern.label(p), doc, cand) {
            used[cand as usize] = true;
            assignment[p as usize] = cand;
            if assign(pattern, doc, order, k + 1, assignment, used) {
                return true;
            }
            used[cand as usize] = false;
        }
    }
    false
}

fn descendants(doc: &Document, n: NodeId) -> Vec<NodeId> {
    let mut out = Vec::new();
    let mut stack: Vec<NodeId> = doc.children(n).to_vec();
    while let Some(x) = stack.pop() {
        out.push(x);
        stack.extend_from_slice(doc.children(x));
    }
    out
}

fn label_matches(label: PatternLabel, doc: &Document, d: NodeId) -> bool {
    let sym = doc.sym(d);
    match label {
        PatternLabel::Elem(e) => sym.as_elem() == Some(e),
        PatternLabel::AnyElem => sym.is_elem(),
        PatternLabel::Value(v) => sym.as_value() == Some(v),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::{SymbolTable, ValueMode};

    fn st() -> SymbolTable {
        SymbolTable::with_value_mode(ValueMode::Intern)
    }

    /// Figure 2(a): P(R, D(L), D(M))
    fn fig2a(stt: &mut SymbolTable) -> Document {
        let p = stt.elem("P");
        let r = stt.elem("R");
        let d = stt.elem("D");
        let l = stt.elem("L");
        let m = stt.elem("M");
        let mut doc = Document::with_root(p);
        let root = doc.root().unwrap();
        doc.child(root, r);
        let d1 = doc.child(root, d);
        doc.child(d1, l);
        let d2 = doc.child(root, d);
        doc.child(d2, m);
        doc
    }

    #[test]
    fn figure2b_is_substructure_of_2a() {
        let mut stt = st();
        let doc = fig2a(&mut stt);
        // Fig 2(b): P(D(L), D(M))
        let p = stt.designator("P");
        let d = stt.designator("D");
        let l = stt.designator("L");
        let m = stt.designator("M");
        let mut q = TreePattern::root(PatternLabel::Elem(p));
        let d1 = q.add(q.root_id(), Axis::Child, PatternLabel::Elem(d));
        q.add(d1, Axis::Child, PatternLabel::Elem(l));
        let d2 = q.add(q.root_id(), Axis::Child, PatternLabel::Elem(d));
        q.add(d2, Axis::Child, PatternLabel::Elem(m));
        assert!(structure_match(&q, &doc));
    }

    #[test]
    fn figure2c_is_not_substructure_of_2a() {
        let mut stt = st();
        let doc = fig2a(&mut stt);
        // Fig 2(c): P(D(L, M)) — L and M under the SAME D.
        let p = stt.designator("P");
        let d = stt.designator("D");
        let l = stt.designator("L");
        let m = stt.designator("M");
        let mut q = TreePattern::root(PatternLabel::Elem(p));
        let dn = q.add(q.root_id(), Axis::Child, PatternLabel::Elem(d));
        q.add(dn, Axis::Child, PatternLabel::Elem(l));
        q.add(dn, Axis::Child, PatternLabel::Elem(m));
        assert!(!structure_match(&q, &doc));
    }

    #[test]
    fn figure4_false_alarm_pair() {
        let mut stt = st();
        let p = stt.elem("P");
        let l = stt.elem("L");
        let s = stt.elem("S");
        let b = stt.elem("B");
        // D = P(L(S), L(B))
        let mut doc = Document::with_root(p);
        let root = doc.root().unwrap();
        let l1 = doc.child(root, l);
        doc.child(l1, s);
        let l2 = doc.child(root, l);
        doc.child(l2, b);
        // Q = P(L(S, B))
        let pd = stt.designator("P");
        let ld = stt.designator("L");
        let sd = stt.designator("S");
        let bd = stt.designator("B");
        let mut q = TreePattern::root(PatternLabel::Elem(pd));
        let ln = q.add(q.root_id(), Axis::Child, PatternLabel::Elem(ld));
        q.add(ln, Axis::Child, PatternLabel::Elem(sd));
        q.add(ln, Axis::Child, PatternLabel::Elem(bd));
        assert!(!structure_match(&q, &doc), "Figure 4: Q must NOT match D");
    }

    #[test]
    fn identical_query_siblings_need_distinct_witnesses() {
        let mut stt = st();
        let p = stt.elem("P");
        let l = stt.elem("L");
        let mut doc = Document::with_root(p);
        let root = doc.root().unwrap();
        doc.child(root, l);

        let pd = stt.designator("P");
        let ld = stt.designator("L");
        let mut q = TreePattern::root(PatternLabel::Elem(pd));
        q.add(q.root_id(), Axis::Child, PatternLabel::Elem(ld));
        q.add(q.root_id(), Axis::Child, PatternLabel::Elem(ld));
        assert!(!structure_match(&q, &doc), "two L's required, one present");

        doc.child(root, l);
        assert!(structure_match(&q, &doc));
    }

    #[test]
    fn descendant_axis_skips_levels() {
        let mut stt = st();
        let a = stt.elem("a");
        let b = stt.elem("b");
        let c = stt.elem("c");
        let mut doc = Document::with_root(a);
        let root = doc.root().unwrap();
        let bn = doc.child(root, b);
        doc.child(bn, c);

        let ad = stt.designator("a");
        let cd = stt.designator("c");
        let mut q = TreePattern::root(PatternLabel::Elem(ad));
        q.add(q.root_id(), Axis::Descendant, PatternLabel::Elem(cd));
        assert!(structure_match(&q, &doc));

        let mut q2 = TreePattern::root(PatternLabel::Elem(ad));
        q2.add(q2.root_id(), Axis::Child, PatternLabel::Elem(cd));
        assert!(!structure_match(&q2, &doc));
    }

    #[test]
    fn root_descendant_axis_matches_anywhere() {
        let mut stt = st();
        let a = stt.elem("a");
        let b = stt.elem("b");
        let mut doc = Document::with_root(a);
        let root = doc.root().unwrap();
        doc.child(root, b);

        let bd = stt.designator("b");
        let q = TreePattern::with_root_axis(PatternLabel::Elem(bd), Axis::Descendant);
        assert!(structure_match(&q, &doc));
        let q2 = TreePattern::root(PatternLabel::Elem(bd));
        assert!(!structure_match(&q2, &doc));
    }

    #[test]
    fn wildcard_matches_elements_not_values() {
        let mut stt = st();
        let a = stt.elem("a");
        let v = stt.val("text");
        let mut doc = Document::with_root(a);
        let root = doc.root().unwrap();
        doc.child(root, v);

        let ad = stt.designator("a");
        let mut q = TreePattern::root(PatternLabel::Elem(ad));
        q.add(q.root_id(), Axis::Child, PatternLabel::AnyElem);
        assert!(!structure_match(&q, &doc), "* must not match a value leaf");

        let vid = stt.values.lookup("text").unwrap();
        let mut q2 = TreePattern::root(PatternLabel::Elem(ad));
        q2.add(q2.root_id(), Axis::Child, PatternLabel::Value(vid));
        assert!(structure_match(&q2, &doc));
    }

    #[test]
    fn empty_document_matches_nothing() {
        let mut stt = st();
        let ad = stt.designator("a");
        let q = TreePattern::root(PatternLabel::Elem(ad));
        assert!(!structure_match(&q, &Document::new()));
    }
}
