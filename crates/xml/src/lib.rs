//! # xseq-xml — XML substrate for sequence-based indexing
//!
//! This crate provides everything the indexing layers need to know about XML
//! itself, following Section 2 ("Data Representation") of Wang & Meng,
//! *On the Sequencing of Tree Structures for XML Indexing* (ICDE 2005):
//!
//! * **Designators** — every element/attribute name is interned to a small
//!   integer ([`Designator`]), exactly like the paper writes `P`, `R`, `D` for
//!   `Project`, `Research`, `Development`.
//! * **Value designators** — attribute/text values are mapped to value
//!   symbols, either by exact interning or through a bounded hash (ViST's
//!   `v_i = h('boston')` scheme); see [`ValueTable`] and [`ValueMode`].
//! * **Path encoding** — each tree node is encoded by the designator path
//!   from the root ([`PathId`] in a shared [`PathTable`]), the node encoding
//!   the paper builds constraint sequences from.
//! * **Documents** — an arena tree model ([`Document`]) plus a small
//!   from-scratch XML parser ([`parse_document`]) and serializer.
//! * **Tree patterns** — structured queries as trees ([`pattern::TreePattern`])
//!   with child/descendant axes, wildcards and value tests, and a
//!   backtracking **brute-force structure matcher** used as ground truth for
//!   the query-equivalence theorems and as the verification step of the
//!   ViST-style baseline.
#![forbid(unsafe_code)]

pub mod document;
pub mod error;
pub mod matcher;
pub mod parser;
pub mod path;
pub mod pattern;
pub mod symbol;
pub mod writer;

pub use document::{Document, NodeId};
pub use error::XmlError;
pub use parser::parse_document;
pub use path::{PathId, PathTable};
pub use pattern::{Axis, PatternLabel, PatternNodeId, TreePattern};
pub use symbol::{Designator, Symbol, SymbolTable, ValueId, ValueMode, ValueTable};
pub use writer::write_document;

/// A corpus couples the shared symbol/path interners with a set of documents.
///
/// Every layer above (sequencing, indexing, baselines) operates on documents
/// whose node labels and path encodings are consistent across the whole
/// dataset, which is what this type guarantees.
#[derive(Debug, Default)]
pub struct Corpus {
    /// Shared element-name and value interners.
    pub symbols: SymbolTable,
    /// Shared path-encoding table.
    pub paths: PathTable,
    /// The documents (the paper's "records"), indexed by [`DocId`].
    pub docs: Vec<Document>,
    /// `xml.parse` latency sink, when attached (see
    /// [`Corpus::attach_parse_histogram`]).
    pub parse_histogram: Option<std::sync::Arc<xseq_telemetry::Histogram>>,
}

/// Identifier of a document within a [`Corpus`].
pub type DocId = u32;

impl Corpus {
    /// Creates an empty corpus with the given value-designator mode.
    pub fn new(mode: ValueMode) -> Self {
        Corpus {
            symbols: SymbolTable::with_value_mode(mode),
            paths: PathTable::new(),
            docs: Vec::new(),
            parse_histogram: None,
        }
    }

    /// Records every subsequent [`Corpus::parse_and_push`]'s parse latency
    /// (ns) into `h` — the pipeline's `xml.parse` phase.
    pub fn attach_parse_histogram(&mut self, h: std::sync::Arc<xseq_telemetry::Histogram>) {
        self.parse_histogram = Some(h);
    }

    /// Adds a document and returns its id.
    pub fn push(&mut self, doc: Document) -> DocId {
        let id = self.docs.len() as DocId;
        self.docs.push(doc);
        id
    }

    /// Parses an XML string against this corpus' interners and adds it.
    pub fn parse_and_push(&mut self, xml: &str) -> Result<DocId, XmlError> {
        let t0 = self
            .parse_histogram
            .as_ref()
            .map(|_| std::time::Instant::now());
        let doc = parse_document(xml, &mut self.symbols)?;
        if let (Some(t), Some(h)) = (t0, self.parse_histogram.as_ref()) {
            h.record_duration(t.elapsed());
        }
        Ok(self.push(doc))
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// True when no documents have been added.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Total number of tree nodes (elements + values) over all documents,
    /// the quantity the paper reports as dataset "Nodes" in Tables 5 and 6.
    pub fn total_nodes(&self) -> usize {
        self.docs.iter().map(|d| d.len()).sum()
    }
}

/// Heap attribution for the corpus: interners plus documents.  The parse
/// histogram is excluded — it is shared with the metrics registry, which
/// accounts for itself.
impl xseq_telemetry::HeapSize for Corpus {
    fn heap_bytes(&self) -> usize {
        self.symbols.heap_bytes() + self.paths.heap_bytes() + self.docs.heap_bytes()
    }
}
