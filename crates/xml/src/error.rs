//! Error types for the XML substrate.

use std::fmt;

/// Errors produced while parsing or validating XML input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlError {
    /// The input ended before the document was complete.
    UnexpectedEof {
        /// Byte offset at which input was exhausted.
        offset: usize,
    },
    /// An unexpected character was encountered.
    UnexpectedChar {
        /// Byte offset of the offending character.
        offset: usize,
        /// The character found.
        found: char,
        /// A short description of what was expected.
        expected: &'static str,
    },
    /// A closing tag did not match the open element.
    MismatchedTag {
        /// Byte offset of the closing tag.
        offset: usize,
        /// Name found in the closing tag.
        found: String,
        /// Name of the element being closed.
        expected: String,
    },
    /// The document has no root element.
    EmptyDocument,
    /// Content appeared after the root element closed.
    TrailingContent {
        /// Byte offset of the trailing content.
        offset: usize,
    },
    /// An entity reference was not recognised.
    BadEntity {
        /// Byte offset of the `&`.
        offset: usize,
    },
    /// A document tree operation referenced a node that does not exist.
    NodeOutOfBounds {
        /// The offending node id.
        node: u32,
    },
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XmlError::UnexpectedEof { offset } => {
                write!(f, "unexpected end of input at byte {offset}")
            }
            XmlError::UnexpectedChar {
                offset,
                found,
                expected,
            } => write!(
                f,
                "unexpected character {found:?} at byte {offset}, expected {expected}"
            ),
            XmlError::MismatchedTag {
                offset,
                found,
                expected,
            } => write!(
                f,
                "mismatched closing tag </{found}> at byte {offset}, expected </{expected}>"
            ),
            XmlError::EmptyDocument => write!(f, "document has no root element"),
            XmlError::TrailingContent { offset } => {
                write!(f, "content after root element at byte {offset}")
            }
            XmlError::BadEntity { offset } => {
                write!(f, "unrecognised entity reference at byte {offset}")
            }
            XmlError::NodeOutOfBounds { node } => {
                write!(f, "node id {node} out of bounds")
            }
        }
    }
}

impl std::error::Error for XmlError {}
