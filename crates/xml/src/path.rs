//! Path encoding of tree nodes.
//!
//! Section 2.2 of the paper: "We encode each node `n` in the tree by the path
//! leading from the root node to `n`" — e.g. `P`, `PR`, `PRL`, `PRLv1`.
//! Paths are interned in a [`PathTable`], itself a trie: a path is its parent
//! path plus one trailing [`Symbol`].  This makes path equality an integer
//! comparison and the prefix test `⊂` a short parent-pointer walk.
//!
//! The set of distinct paths also doubles as the *path dictionary* (a
//! DataGuide in disguise) that the index layer uses to instantiate the `*`
//! and `//` wildcards of queries against concrete data paths.

use crate::symbol::Symbol;
use std::collections::HashMap;
use xseq_telemetry::HeapSize;

/// Interned identifier of a root-to-node designator path.
///
/// `PathId::ROOT` is the empty path ε; real node encodings are its proper
/// descendants (the paper's root node `P` has path encoding `P`, i.e. the
/// path of length 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PathId(pub u32);

impl PathId {
    /// The empty path ε.
    pub const ROOT: PathId = PathId(0);
}

#[derive(Debug, Clone)]
struct PathEntry {
    parent: PathId,
    last: Symbol,
    depth: u16,
    /// Child paths, for dictionary enumeration (wildcard instantiation).
    children: Vec<PathId>,
}

/// Interning table of designator paths, structured as a trie.
///
/// `Clone` supports the parallel ingest pipeline: each worker extends a
/// clone of the shared table and the deltas (entries past the base length)
/// are merged back in document order, which replays the sequential
/// first-occurrence interning order exactly.
#[derive(Debug, Clone)]
pub struct PathTable {
    entries: Vec<PathEntry>,
    /// (parent, symbol) -> child path
    lookup: HashMap<(PathId, Symbol), PathId>,
}

impl Default for PathTable {
    fn default() -> Self {
        Self::new()
    }
}

impl PathTable {
    /// Creates a table containing only the empty path ε.
    pub fn new() -> Self {
        PathTable {
            entries: vec![PathEntry {
                parent: PathId::ROOT,
                last: Symbol::from_raw(u32::MAX), // never read for ROOT
                depth: 0,
                children: Vec::new(),
            }],
            lookup: HashMap::new(),
        }
    }

    /// Interns the extension of `parent` by `sym`, returning the child path.
    // PANIC-FREE: PathIds are only minted by this table, so `parent`
    // always indexes `entries`; stale ids are a documented caller bug
    pub fn extend(&mut self, parent: PathId, sym: Symbol) -> PathId {
        if let Some(&p) = self.lookup.get(&(parent, sym)) {
            return p;
        }
        let id = PathId(self.entries.len() as u32);
        let depth = self.entries[parent.0 as usize].depth + 1;
        self.entries.push(PathEntry {
            parent,
            last: sym,
            depth,
            children: Vec::new(),
        });
        self.entries[parent.0 as usize].children.push(id);
        self.lookup.insert((parent, sym), id);
        id
    }

    /// Looks up the extension of `parent` by `sym` without interning.
    pub fn child(&self, parent: PathId, sym: Symbol) -> Option<PathId> {
        self.lookup.get(&(parent, sym)).copied()
    }

    /// Interns a whole path given as a symbol slice (root designator first).
    pub fn intern(&mut self, syms: &[Symbol]) -> PathId {
        let mut p = PathId::ROOT;
        for &s in syms {
            p = self.extend(p, s);
        }
        p
    }

    /// Looks up a whole path without interning.
    pub fn lookup(&self, syms: &[Symbol]) -> Option<PathId> {
        let mut p = PathId::ROOT;
        for &s in syms {
            p = self.child(p, s)?;
        }
        Some(p)
    }

    /// Parent path (ε's parent is ε).
    // PANIC-FREE: table-minted PathId contract (see `extend`)
    #[inline]
    pub fn parent(&self, p: PathId) -> PathId {
        self.entries[p.0 as usize].parent
    }

    /// Last symbol of a non-empty path.
    // PANIC-FREE: table-minted PathId contract (see `extend`)
    #[inline]
    pub fn last(&self, p: PathId) -> Option<Symbol> {
        if p == PathId::ROOT {
            None
        } else {
            Some(self.entries[p.0 as usize].last)
        }
    }

    /// Number of symbols in the path.
    // PANIC-FREE: table-minted PathId contract (see `extend`)
    #[inline]
    pub fn depth(&self, p: PathId) -> u16 {
        self.entries[p.0 as usize].depth
    }

    /// The paper's `⊂`: true iff `a` is a **proper** prefix of `b`.
    pub fn is_proper_prefix(&self, a: PathId, b: PathId) -> bool {
        if a == b {
            return false;
        }
        let da = self.depth(a);
        let mut cur = b;
        while self.depth(cur) > da {
            cur = self.parent(cur);
        }
        cur == a
    }

    /// Prefix-or-equal test.
    pub fn is_prefix(&self, a: PathId, b: PathId) -> bool {
        a == b || self.is_proper_prefix(a, b)
    }

    /// The ancestor of `b` at exactly `depth`, if `b` is that deep.
    pub fn ancestor_at_depth(&self, b: PathId, depth: u16) -> Option<PathId> {
        if self.depth(b) < depth {
            return None;
        }
        let mut cur = b;
        while self.depth(cur) > depth {
            cur = self.parent(cur);
        }
        Some(cur)
    }

    /// Materializes a path as a symbol vector (root first).
    // PANIC-FREE: table-minted PathId contract (see `extend`)
    pub fn symbols(&self, p: PathId) -> Vec<Symbol> {
        let mut out = Vec::with_capacity(self.depth(p) as usize);
        let mut cur = p;
        while cur != PathId::ROOT {
            out.push(self.entries[cur.0 as usize].last);
            cur = self.parent(cur);
        }
        out.reverse();
        out
    }

    /// Child paths of `p` in the dictionary (insertion order).
    // PANIC-FREE: table-minted PathId contract (see `extend`)
    pub fn children(&self, p: PathId) -> &[PathId] {
        &self.entries[p.0 as usize].children
    }

    /// Number of interned paths, counting ε.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Always false (ε is always present).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Iterates over every interned path, including ε.
    pub fn iter(&self) -> impl Iterator<Item = PathId> + '_ {
        (0..self.entries.len() as u32).map(PathId)
    }

    /// Merges the interning delta of `local` — paths allocated past
    /// `base_len` — into `self`, returning the remap from `local`'s path
    /// ids into `self`'s.
    ///
    /// `local` must be a clone of `self` taken when `self` held exactly
    /// `base_len` entries, and its symbols must already be in the merged
    /// namespace (parallel ingest merges symbol deltas before sequencing).
    /// A path's parent always has a smaller id than the path itself, so a
    /// single in-order pass over the delta can resolve every parent
    /// through the remap built so far.  Absorbing per-worker deltas in
    /// document order replays the sequential first-occurrence interning
    /// order exactly.
    pub fn absorb_delta(&mut self, local: &PathTable, base_len: usize) -> PathRemap {
        let mut map = Vec::with_capacity(local.len() - base_len);
        for i in base_len..local.len() {
            let p = PathId(i as u32);
            let parent = local.parent(p);
            let parent = if (parent.0 as usize) < base_len {
                parent
            } else {
                map[parent.0 as usize - base_len]
            };
            let last = local
                .last(p)
                .expect("non-root paths always have a last symbol");
            map.push(self.extend(parent, last));
        }
        PathRemap {
            base: base_len as u32,
            map,
        }
    }

    /// All descendant paths of `p` (excluding `p`), preorder.  Used for `//`
    /// wildcard instantiation.
    pub fn descendants(&self, p: PathId) -> Vec<PathId> {
        let mut out = Vec::new();
        let mut stack: Vec<PathId> = self.children(p).to_vec();
        while let Some(q) = stack.pop() {
            out.push(q);
            stack.extend_from_slice(self.children(q));
        }
        out
    }
}

impl HeapSize for PathId {
    #[inline]
    fn heap_bytes(&self) -> usize {
        0
    }
}

/// Heap attribution for the path dictionary: the entry arena, the
/// per-entry child lists and the `(parent, symbol)` lookup table.
impl HeapSize for PathTable {
    fn heap_bytes(&self) -> usize {
        self.entries.capacity() * std::mem::size_of::<PathEntry>()
            + self
                .entries
                .iter()
                .map(|e| e.children.capacity() * std::mem::size_of::<PathId>())
                .sum::<usize>()
            + self.lookup.heap_bytes()
    }
}

/// Path-id remap produced by [`PathTable::absorb_delta`]: maps a
/// worker-local path id into the merged table's namespace.  Ids below the
/// base length are shared and map to themselves.
#[derive(Debug, Clone)]
pub struct PathRemap {
    base: u32,
    map: Vec<PathId>,
}

impl PathRemap {
    /// Maps a local path id into the merged namespace.
    // PANIC-FREE: the remap covers every id the local table minted, and
    // `p >= base` implies `p - base < map.len()` by construction
    pub fn path(&self, p: PathId) -> PathId {
        if p.0 < self.base {
            p
        } else {
            self.map[(p.0 - self.base) as usize]
        }
    }

    /// True when the delta mapped onto the merged table without renumbering.
    pub fn is_identity(&self) -> bool {
        self.map
            .iter()
            .enumerate()
            .all(|(i, p)| p.0 == self.base + i as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::{SymbolTable, ValueMode};

    fn table() -> (SymbolTable, PathTable) {
        (
            SymbolTable::with_value_mode(ValueMode::Intern),
            PathTable::new(),
        )
    }

    #[test]
    fn intern_and_lookup() {
        let (mut st, mut pt) = table();
        let p = st.elem("P");
        let r = st.elem("R");
        let pr = pt.intern(&[p, r]);
        assert_eq!(pt.lookup(&[p, r]), Some(pr));
        assert_eq!(pt.lookup(&[r]), None);
        assert_eq!(pt.depth(pr), 2);
        assert_eq!(pt.symbols(pr), vec![p, r]);
    }

    #[test]
    fn extension_is_idempotent() {
        let (mut st, mut pt) = table();
        let p = st.elem("P");
        let a = pt.extend(PathId::ROOT, p);
        let b = pt.extend(PathId::ROOT, p);
        assert_eq!(a, b);
        assert_eq!(pt.len(), 2);
    }

    #[test]
    fn prefix_relation() {
        let (mut st, mut pt) = table();
        let p = st.elem("P");
        let d = st.elem("D");
        let l = st.elem("L");
        let pp = pt.intern(&[p]);
        let pd = pt.intern(&[p, d]);
        let pdl = pt.intern(&[p, d, l]);
        let pl = pt.intern(&[p, l]);

        assert!(pt.is_proper_prefix(PathId::ROOT, pp));
        assert!(pt.is_proper_prefix(pp, pd));
        assert!(pt.is_proper_prefix(pp, pdl));
        assert!(pt.is_proper_prefix(pd, pdl));
        assert!(!pt.is_proper_prefix(pd, pd));
        assert!(pt.is_prefix(pd, pd));
        assert!(!pt.is_proper_prefix(pl, pdl));
        assert!(!pt.is_proper_prefix(pdl, pd));
    }

    #[test]
    fn ancestor_at_depth() {
        let (mut st, mut pt) = table();
        let syms: Vec<_> = ["a", "b", "c", "d"].iter().map(|n| st.elem(n)).collect();
        let deep = pt.intern(&syms);
        let ab = pt.lookup(&syms[..2]).unwrap();
        assert_eq!(pt.ancestor_at_depth(deep, 2), Some(ab));
        assert_eq!(pt.ancestor_at_depth(ab, 4), None);
        assert_eq!(pt.ancestor_at_depth(deep, 0), Some(PathId::ROOT));
    }

    #[test]
    fn descendants_enumeration() {
        let (mut st, mut pt) = table();
        let p = st.elem("P");
        let a = st.elem("A");
        let b = st.elem("B");
        let pp = pt.intern(&[p]);
        let pa = pt.intern(&[p, a]);
        let pab = pt.intern(&[p, a, b]);
        let pb = pt.intern(&[p, b]);
        let mut ds = pt.descendants(pp);
        ds.sort();
        let mut expect = vec![pa, pab, pb];
        expect.sort();
        assert_eq!(ds, expect);
        assert!(pt.descendants(pab).is_empty());
    }

    #[test]
    fn absorb_delta_replays_first_occurrence_order() {
        let (mut st, mut pt) = table();
        let p = st.elem("P");
        let a = st.elem("A");
        let b = st.elem("B");
        let c = st.elem("C");
        pt.intern(&[p, a]);
        let base = pt.len();

        // Two workers extend clones of the shared table in different ways.
        let mut w0 = pt.clone();
        let w0_pb = w0.intern(&[p, b]);
        let w0_pa = w0.intern(&[p, a]); // pre-existing: below base
        let mut w1 = pt.clone();
        let w1_pc = w1.intern(&[p, c]);
        let w1_pb = w1.intern(&[p, b]); // duplicated across workers

        let r0 = pt.absorb_delta(&w0, base);
        let r1 = pt.absorb_delta(&w1, base);
        assert!(r0.is_identity(), "first delta keeps its own numbering");
        assert!(!r1.is_identity(), "second delta renumbers around worker 0");
        assert_eq!(r0.path(w0_pa), w0_pa);
        assert_eq!(r1.path(w1_pb), r0.path(w0_pb), "shared path converges");
        assert_ne!(r1.path(w1_pc), w1_pc, "fresh path renumbered past worker 0");

        // The merged table equals a sequential build in the same doc order.
        let (mut st2, mut seq) = table();
        let (p2, a2, b2, c2) = (st2.elem("P"), st2.elem("A"), st2.elem("B"), st2.elem("C"));
        assert_eq!((p2, a2, b2, c2), (p, a, b, c));
        seq.intern(&[p2, a2]);
        seq.intern(&[p2, b2]);
        seq.intern(&[p2, a2]);
        seq.intern(&[p2, c2]);
        seq.intern(&[p2, b2]);
        assert_eq!(pt.len(), seq.len());
        for i in 0..pt.len() as u32 {
            assert_eq!(pt.parent(PathId(i)), seq.parent(PathId(i)));
            assert_eq!(pt.last(PathId(i)), seq.last(PathId(i)));
        }
    }

    #[test]
    fn values_participate_in_paths() {
        let (mut st, mut pt) = table();
        let p = st.elem("P");
        let l = st.elem("L");
        let v = st.val("boston");
        let plv = pt.intern(&[p, l, v]);
        assert_eq!(pt.depth(plv), 3);
        assert_eq!(pt.last(plv), Some(v));
        assert!(pt.last(plv).unwrap().is_value());
    }
}
