//! XML serialization of [`Document`] trees.
//!
//! The inverse of the parser for the tree model used here: element nodes
//! become tags, value leaves become text content.  Since attributes are
//! modelled as ordinary child elements (see the parser docs), a serialized
//! round trip is element-shaped rather than byte-identical — which is all the
//! test suite and the data generators need.

use crate::document::{Document, NodeId};
use crate::symbol::SymbolTable;
use std::fmt::Write;

/// Serializes a document to XML text.
pub fn write_document(doc: &Document, symbols: &SymbolTable) -> String {
    let mut out = String::new();
    if let Some(root) = doc.root() {
        write_node(doc, symbols, root, &mut out);
    }
    out
}

fn write_node(doc: &Document, symbols: &SymbolTable, n: NodeId, out: &mut String) {
    let sym = doc.sym(n);
    if let Some(v) = sym.as_value() {
        match symbols.values.resolve(v) {
            // chain terminators (Chars mode) are structural, not text
            Some(s) if s == crate::symbol::ValueTable::END => {}
            Some(s) => out.push_str(&escape(s)),
            None => {
                let _ = write!(out, "v#{}", v.0);
            }
        }
        // Chars-mode chains nest: continue down the chain
        for &c in doc.children(n) {
            write_node(doc, symbols, c, out);
        }
        return;
    }
    let name = symbols.name(sym.as_elem().expect("element symbol"));
    if doc.children(n).is_empty() {
        let _ = write!(out, "<{name}/>");
        return;
    }
    let _ = write!(out, "<{name}>");
    for &c in doc.children(n) {
        write_node(doc, symbols, c, out);
    }
    let _ = write!(out, "</{name}>");
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            _ => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_document;
    use crate::symbol::{SymbolTable, ValueMode};

    #[test]
    fn roundtrip_structure() {
        let xml = "<a><b>hi</b><c/><b>hi</b></a>";
        let mut symbols = SymbolTable::with_value_mode(ValueMode::Intern);
        let doc = parse_document(xml, &mut symbols).unwrap();
        let text = write_document(&doc, &symbols);
        let doc2 = parse_document(&text, &mut symbols).unwrap();
        assert!(doc.structurally_eq(&doc2));
    }

    #[test]
    fn escapes_special_chars() {
        let mut symbols = SymbolTable::with_value_mode(ValueMode::Intern);
        let doc = parse_document("<a>a &lt; b &amp; c</a>", &mut symbols).unwrap();
        let text = write_document(&doc, &symbols);
        assert!(text.contains("&lt;"));
        assert!(text.contains("&amp;"));
        let doc2 = parse_document(&text, &mut symbols).unwrap();
        assert!(doc.structurally_eq(&doc2));
    }

    #[test]
    fn empty_document_serializes_to_nothing() {
        let symbols = SymbolTable::default();
        assert_eq!(write_document(&Document::new(), &symbols), "");
    }
}
