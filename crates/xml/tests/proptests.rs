//! Property tests for the XML substrate: serializer/parser round trips,
//! path-encoding invariants, and oracle sanity.

use proptest::prelude::*;
use xseq_xml::matcher::{find_embedding, structure_match};
use xseq_xml::{
    parse_document, write_document, Axis, Document, PathTable, PatternLabel, SymbolTable,
    TreePattern, ValueMode,
};

#[derive(Debug, Clone)]
struct DocRecipe {
    parents: Vec<u32>,
    labels: Vec<u8>,
    values: Vec<Option<u8>>,
}

fn doc_recipe(max_nodes: usize) -> impl Strategy<Value = DocRecipe> {
    (1..max_nodes).prop_flat_map(|n| {
        (
            proptest::collection::vec(any::<u32>(), n),
            proptest::collection::vec(any::<u8>(), n + 1),
            proptest::collection::vec(proptest::option::weighted(0.3, any::<u8>()), n + 1),
        )
            .prop_map(|(parents, labels, values)| DocRecipe {
                parents,
                labels,
                values,
            })
    })
}

fn build(recipe: &DocRecipe, st: &mut SymbolTable) -> Document {
    let elems: Vec<_> = (0..5).map(|i| st.elem(&format!("el{i}"))).collect();
    let mut doc = Document::with_root(elems[0]);
    // ids of element nodes only — parents are drawn from these
    let mut elem_ids = vec![doc.root().unwrap()];
    for i in 1..=recipe.parents.len() {
        let parent = elem_ids[recipe.parents[i - 1] as usize % elem_ids.len()];
        let n = doc.child(parent, elems[(recipe.labels[i] as usize) % elems.len()]);
        elem_ids.push(n);
        if let Some(v) = recipe.values[i] {
            let vs = st.val(&format!("val{}", v % 16));
            doc.child(n, vs);
        }
    }
    doc
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn write_parse_roundtrip(recipe in doc_recipe(20)) {
        let mut st = SymbolTable::with_value_mode(ValueMode::Intern);
        let doc = build(&recipe, &mut st);
        let text = write_document(&doc, &st);
        let doc2 = parse_document(&text, &mut st).unwrap();
        prop_assert!(doc.structurally_eq(&doc2), "{text}");
    }

    #[test]
    fn path_encoding_depth_and_prefix_invariants(recipe in doc_recipe(25)) {
        let mut st = SymbolTable::with_value_mode(ValueMode::Intern);
        let doc = build(&recipe, &mut st);
        let mut paths = PathTable::new();
        let enc = doc.path_encode(&mut paths);
        for n in doc.node_ids() {
            prop_assert_eq!(paths.depth(enc[n as usize]), doc.depth(n));
            if let Some(p) = doc.parent(n) {
                prop_assert!(paths.is_proper_prefix(enc[p as usize], enc[n as usize]));
                prop_assert_eq!(paths.parent(enc[n as usize]), enc[p as usize]);
            }
        }
    }

    #[test]
    fn every_subtree_is_a_match_witnessed_by_embedding(recipe in doc_recipe(12)) {
        let mut st = SymbolTable::with_value_mode(ValueMode::Intern);
        let doc = build(&recipe, &mut st);
        // the exact pattern of the whole document matches it, and the
        // returned embedding is label- and parent-consistent
        let label = |d: &Document, n: u32| match (d.sym(n).as_elem(), d.sym(n).as_value()) {
            (Some(e), _) => PatternLabel::Elem(e),
            (_, Some(v)) => PatternLabel::Value(v),
            _ => unreachable!(),
        };
        let root = doc.root().unwrap();
        let mut q = TreePattern::root(label(&doc, root));
        let mut map = vec![0u32; doc.len()];
        for n in doc.preorder() {
            if n == root { continue; }
            let p = doc.parent(n).unwrap();
            map[n as usize] = q.add(map[p as usize], Axis::Child, label(&doc, n));
        }
        let emb = find_embedding(&q, &doc).expect("self-match");
        for pn in q.node_ids() {
            let dn = emb[pn as usize];
            // label consistent
            match q.label(pn) {
                PatternLabel::Elem(e) => prop_assert_eq!(doc.sym(dn).as_elem(), Some(e)),
                PatternLabel::Value(v) => prop_assert_eq!(doc.sym(dn).as_value(), Some(v)),
                PatternLabel::AnyElem => prop_assert!(doc.sym(dn).is_elem()),
            }
            // parent consistent
            if let Some(pp) = q.parent(pn) {
                prop_assert_eq!(doc.parent(dn), Some(emb[pp as usize]));
            }
        }
        // injective
        let mut seen = std::collections::HashSet::new();
        for &dn in &emb {
            prop_assert!(seen.insert(dn));
        }
    }

    #[test]
    fn structure_match_is_monotone_under_node_removal(recipe in doc_recipe(12), drop in any::<u32>()) {
        // removing a leaf from the pattern never turns a match into a miss
        let mut st = SymbolTable::with_value_mode(ValueMode::Intern);
        let doc = build(&recipe, &mut st);
        let label = |d: &Document, n: u32| match (d.sym(n).as_elem(), d.sym(n).as_value()) {
            (Some(e), _) => PatternLabel::Elem(e),
            (_, Some(v)) => PatternLabel::Value(v),
            _ => unreachable!(),
        };
        let root = doc.root().unwrap();
        // full pattern, minus one randomly chosen leaf subtree (skip root)
        let skip = if doc.len() > 1 { 1 + (drop as usize % (doc.len() - 1)) } else { 0 };
        let mut q = TreePattern::root(label(&doc, root));
        let mut map = vec![u32::MAX; doc.len()];
        map[root as usize] = q.root_id();
        for n in doc.preorder() {
            if n == root || n as usize == skip { continue; }
            let p = doc.parent(n).unwrap();
            if map[p as usize] == u32::MAX { continue; } // under the skipped subtree
            map[n as usize] = q.add(map[p as usize], Axis::Child, label(&doc, n));
        }
        prop_assert!(structure_match(&q, &doc), "partial pattern must still match");
    }
}
