//! The workload profiler: per-class query accounting for Eq. 6.
//!
//! Section 5.2 leaves the weights `w(C)` to the user ("reflects the query
//! frequency and selectivity of node C").  This module provides the
//! measurement half: every executed query is classified into the schema
//! node classes `C` it touches — the [`PathId`]s of its query sequence,
//! the same identifiers [`crate::ProbabilityModel`] estimates
//! `p(C | root)` over — and a [`WorkloadProfile`] accumulates, per class,
//! how many queries touched it, how many results they produced
//! (selectivity), and how long they took.  A later compaction can then
//! derive `w(C)` directly as [`WorkloadProfile::frequency`] scaled by
//! observed selectivity, closing the paper's tuning loop.
//!
//! Profiles are plain data: snapshot-able ([`Clone`]), mergeable
//! ([`WorkloadProfile::merge`], proven equivalent to replaying the
//! concatenated history), and round-trippable through a dep-free JSON
//! form so an operator can persist a day's workload and feed it back.
//! [`WorkloadRecorder`] is the `Sync` wrapper queries record into through
//! `&self`.

use std::collections::BTreeMap;
use std::sync::Mutex;
use xseq_xml::PathId;

/// Accumulated statistics for one schema node class `C`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassStats {
    /// Queries whose class set contained `C`.
    pub queries: u64,
    /// Total results returned by those queries.
    pub results: u64,
    /// Total wall time of those queries, in nanoseconds.
    pub latency_ns: u64,
}

impl ClassStats {
    /// Mean latency of the class's queries, `None` before the first one.
    pub fn mean_latency_ns(&self) -> Option<u64> {
        (self.queries > 0).then(|| self.latency_ns / self.queries)
    }

    /// Mean result cardinality — the selectivity signal for `w(C)`.
    pub fn mean_results(&self) -> Option<f64> {
        (self.queries > 0).then(|| self.results as f64 / self.queries as f64)
    }

    fn merge(&mut self, other: &ClassStats) {
        self.queries += other.queries;
        self.results += other.results;
        self.latency_ns += other.latency_ns;
    }
}

/// A per-class accounting of an executed query history.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkloadProfile {
    classes: BTreeMap<PathId, ClassStats>,
    queries: u64,
    unclassified: u64,
}

impl WorkloadProfile {
    /// An empty profile.
    pub fn new() -> Self {
        WorkloadProfile::default()
    }

    /// Records one executed query: the classes its sequence touched, its
    /// result cardinality, and its wall time.  A query with no classes
    /// (nothing instantiable against the corpus) counts as unclassified.
    pub fn record(&mut self, classes: &[PathId], results: u64, latency_ns: u64) {
        self.queries += 1;
        if classes.is_empty() {
            self.unclassified += 1;
            return;
        }
        for &c in classes {
            let entry = self.classes.entry(c).or_default();
            entry.queries += 1;
            entry.results += results;
            entry.latency_ns += latency_ns;
        }
    }

    /// Folds `other` into `self`.  Equivalent to having recorded the two
    /// underlying query histories into one profile, in any order.
    pub fn merge(&mut self, other: &WorkloadProfile) {
        self.queries += other.queries;
        self.unclassified += other.unclassified;
        for (&c, stats) in &other.classes {
            self.classes.entry(c).or_default().merge(stats);
        }
    }

    /// Total recorded queries.
    pub fn queries(&self) -> u64 {
        self.queries
    }

    /// Recorded queries that touched no class.
    pub fn unclassified(&self) -> u64 {
        self.unclassified
    }

    /// Number of distinct classes observed.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// True before the first recorded query touched a class.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// The stats of class `c`, if any query touched it.
    pub fn class(&self, c: PathId) -> Option<&ClassStats> {
        self.classes.get(&c)
    }

    /// Iterates classes in `PathId` order.
    pub fn iter(&self) -> impl Iterator<Item = (PathId, &ClassStats)> {
        self.classes.iter().map(|(&c, s)| (c, s))
    }

    /// The fraction of recorded queries that touched `c` — the query
    /// frequency factor of the paper's `w(C)`.  Zero before any queries.
    pub fn frequency(&self, c: PathId) -> f64 {
        if self.queries == 0 {
            return 0.0;
        }
        self.class(c).map_or(0.0, |s| s.queries as f64) / self.queries as f64
    }

    /// Serializes the profile as a compact JSON object:
    /// `{"queries":N,"unclassified":N,
    ///   "classes":[[path,queries,results,latency_ns],…]}`.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"queries\":{},\"unclassified\":{},\"classes\":[",
            self.queries, self.unclassified
        );
        for (i, (&c, s)) in self.classes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "[{},{},{},{}]",
                c.0, s.queries, s.results, s.latency_ns
            );
        }
        out.push_str("]}");
        out
    }

    /// Parses [`WorkloadProfile::to_json`] output back into a profile.
    ///
    /// The parser accepts exactly the emitted shape (whitespace-tolerant);
    /// `from_json(to_json(p)) == p` for every profile.
    pub fn from_json(text: &str) -> Result<WorkloadProfile, String> {
        let mut cursor = Cursor::new(text);
        cursor.expect_str("{")?;
        cursor.expect_str("\"queries\"")?;
        cursor.expect_str(":")?;
        let queries = cursor.parse_u64()?;
        cursor.expect_str(",")?;
        cursor.expect_str("\"unclassified\"")?;
        cursor.expect_str(":")?;
        let unclassified = cursor.parse_u64()?;
        cursor.expect_str(",")?;
        cursor.expect_str("\"classes\"")?;
        cursor.expect_str(":")?;
        cursor.expect_str("[")?;
        let mut classes = BTreeMap::new();
        if !cursor.try_str("]") {
            loop {
                cursor.expect_str("[")?;
                let path = cursor.parse_u64()?;
                cursor.expect_str(",")?;
                let q = cursor.parse_u64()?;
                cursor.expect_str(",")?;
                let results = cursor.parse_u64()?;
                cursor.expect_str(",")?;
                let latency_ns = cursor.parse_u64()?;
                cursor.expect_str("]")?;
                let path = u32::try_from(path).map_err(|_| "path id out of range".to_string())?;
                if classes
                    .insert(
                        PathId(path),
                        ClassStats {
                            queries: q,
                            results,
                            latency_ns,
                        },
                    )
                    .is_some()
                {
                    return Err(format!("duplicate class {path}"));
                }
                if !cursor.try_str(",") {
                    cursor.expect_str("]")?;
                    break;
                }
            }
        }
        cursor.expect_str("}")?;
        cursor.expect_end()?;
        Ok(WorkloadProfile {
            classes,
            queries,
            unclassified,
        })
    }
}

/// A whitespace-skipping token cursor for the profile's JSON subset.
struct Cursor<'a> {
    rest: &'a str,
}

impl<'a> Cursor<'a> {
    fn new(text: &'a str) -> Self {
        Cursor { rest: text }
    }

    fn skip_ws(&mut self) {
        self.rest = self.rest.trim_start();
    }

    fn try_str(&mut self, token: &str) -> bool {
        self.skip_ws();
        if let Some(rest) = self.rest.strip_prefix(token) {
            self.rest = rest;
            true
        } else {
            false
        }
    }

    fn expect_str(&mut self, token: &str) -> Result<(), String> {
        if self.try_str(token) {
            Ok(())
        } else {
            Err(format!(
                "expected `{token}` at `{}`",
                &self.rest[..self.rest.len().min(20)]
            ))
        }
    }

    fn parse_u64(&mut self) -> Result<u64, String> {
        self.skip_ws();
        let digits = self.rest.len()
            - self
                .rest
                .trim_start_matches(|c: char| c.is_ascii_digit())
                .len();
        if digits == 0 {
            return Err(format!(
                "expected number at `{}`",
                &self.rest[..self.rest.len().min(20)]
            ));
        }
        let (num, rest) = self.rest.split_at(digits);
        self.rest = rest;
        num.parse().map_err(|e| format!("bad number `{num}`: {e}"))
    }

    fn expect_end(&mut self) -> Result<(), String> {
        self.skip_ws();
        if self.rest.is_empty() {
            Ok(())
        } else {
            Err(format!(
                "trailing data at `{}`",
                &self.rest[..self.rest.len().min(20)]
            ))
        }
    }
}

/// A `Sync` recorder queries accumulate into through `&self`.
///
/// Queries hold the lock only for the few map updates of one `record`
/// call; the zero-overhead bench (`profile_overhead`) gates the cost at
/// under 3% of query p50.
#[derive(Debug, Default)]
pub struct WorkloadRecorder {
    inner: Mutex<WorkloadProfile>,
}

impl WorkloadRecorder {
    /// A recorder over an empty profile.
    pub fn new() -> Self {
        WorkloadRecorder::default()
    }

    /// Records one executed query (see [`WorkloadProfile::record`]).
    pub fn record(&self, classes: &[PathId], results: u64, latency_ns: u64) {
        self.lock().record(classes, results, latency_ns);
    }

    /// An owned snapshot of the accumulated profile.
    pub fn snapshot(&self) -> WorkloadProfile {
        self.lock().clone()
    }

    /// Swaps in an empty profile and returns the accumulated one — the
    /// hand-off a compaction uses to consume an epoch's workload.
    pub fn take(&self) -> WorkloadProfile {
        std::mem::take(&mut *self.lock())
    }

    /// Distinct classes seen so far (cheap: no profile clone) — the value
    /// behind the `workload.classes` gauge.
    pub fn class_count(&self) -> usize {
        self.lock().len()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, WorkloadProfile> {
        // a poisoned profile is still sound data (plain counters), so
        // recover it rather than propagate the panic
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn p(id: u32) -> PathId {
        PathId(id)
    }

    #[test]
    fn record_accumulates_per_class() {
        let mut w = WorkloadProfile::new();
        w.record(&[p(1), p(2)], 5, 100);
        w.record(&[p(2)], 0, 50);
        w.record(&[], 0, 10);
        assert_eq!(w.queries(), 3);
        assert_eq!(w.unclassified(), 1);
        assert_eq!(w.len(), 2);
        let c2 = w.class(p(2)).copied().unwrap_or_default();
        assert_eq!(c2.queries, 2);
        assert_eq!(c2.results, 5);
        assert_eq!(c2.latency_ns, 150);
        assert_eq!(w.frequency(p(2)), 2.0 / 3.0);
        assert_eq!(w.frequency(p(9)), 0.0);
        assert_eq!(c2.mean_latency_ns(), Some(75));
        assert_eq!(w.class(p(1)).and_then(|s| s.mean_results()), Some(5.0));
    }

    #[test]
    fn json_round_trip_hand_cases() {
        for profile in [WorkloadProfile::new(), {
            let mut w = WorkloadProfile::new();
            w.record(&[p(0), p(7)], 3, 42);
            w.record(&[], 0, 1);
            w
        }] {
            let json = profile.to_json();
            let back = WorkloadProfile::from_json(&json).expect("round trip parses");
            assert_eq!(back, profile, "{json}");
        }
    }

    #[test]
    fn from_json_rejects_malformed_documents() {
        for bad in [
            "",
            "{}",
            "{\"queries\":1}",
            "{\"queries\":1,\"unclassified\":0,\"classes\":[[1,2,3]]}",
            "{\"queries\":1,\"unclassified\":0,\"classes\":[]} trailing",
            "{\"queries\":1,\"unclassified\":0,\"classes\":[[1,1,0,0],[1,1,0,0]]}",
        ] {
            assert!(WorkloadProfile::from_json(bad).is_err(), "accepted: {bad}");
        }
    }

    /// One scripted "query history" event: class set, results, latency.
    type Event = (Vec<u16>, u64, u32);

    fn replay(events: &[Event]) -> WorkloadProfile {
        let mut w = WorkloadProfile::new();
        for (classes, results, latency) in events {
            let classes: Vec<PathId> = classes.iter().map(|&c| p(u32::from(c))).collect();
            w.record(&classes, *results, u64::from(*latency));
        }
        w
    }

    fn events() -> impl Strategy<Value = Vec<Event>> {
        proptest::collection::vec(
            (
                proptest::collection::vec(0u16..32, 0..6),
                0u64..1000,
                0u32..1_000_000,
            ),
            0..40,
        )
    }

    proptest! {
        /// merge(a, b) ≡ replaying the concatenated query history.
        #[test]
        fn merge_equals_concatenated_replay(a in events(), b in events()) {
            let mut merged = replay(&a);
            merged.merge(&replay(&b));
            let mut concat = a.clone();
            concat.extend(b.clone());
            prop_assert_eq!(merged, replay(&concat));
        }

        #[test]
        fn json_round_trips(a in events()) {
            let profile = replay(&a);
            let back = WorkloadProfile::from_json(&profile.to_json());
            prop_assert_eq!(back.as_ref(), Ok(&profile));
        }

        #[test]
        fn merge_is_commutative(a in events(), b in events()) {
            let mut ab = replay(&a);
            ab.merge(&replay(&b));
            let mut ba = replay(&b);
            ba.merge(&replay(&a));
            prop_assert_eq!(ab, ba);
        }
    }

    /// Mirrors the slow-log retention test: 8 threads hammer one recorder
    /// and the result equals the sequential replay of all events.
    #[test]
    fn eight_thread_accumulation_matches_sequential_replay() {
        const THREADS: u32 = 8;
        const PER_THREAD: u32 = 500;
        let recorder = WorkloadRecorder::new();
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let recorder = &recorder;
                s.spawn(move || {
                    for i in 0..PER_THREAD {
                        let classes = [p(t), p(THREADS + i % 4)];
                        recorder.record(&classes, u64::from(i % 7), u64::from(i));
                    }
                });
            }
        });
        let got = recorder.snapshot();
        let mut expect = WorkloadProfile::new();
        for t in 0..THREADS {
            for i in 0..PER_THREAD {
                expect.record(&[p(t), p(THREADS + i % 4)], u64::from(i % 7), u64::from(i));
            }
        }
        assert_eq!(got, expect);
        // take() drains
        let taken = recorder.take();
        assert_eq!(taken, expect);
        assert_eq!(recorder.snapshot(), WorkloadProfile::new());
    }
}
