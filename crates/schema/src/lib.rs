//! # xseq-schema — node occurrence probabilities and sequencing priorities
//!
//! Section 5.2 of the paper: the performance-oriented strategy `g_best`
//! orders nodes by their *weighted root occurrence probability*
//!
//! ```text
//! p'(C | root) = p(C | root) · w(C)          (Eq. 6)
//! ```
//!
//! where `p(C | root)` is derived from the conditional existence
//! probabilities `p(C | parent)` of the schema by the chain rule
//! (Figures 12 → 13), and `w(C)` is a user weight reflecting how often and
//! how selectively `C` is queried.
//!
//! Two ways to obtain the probabilities, both provided here:
//!
//! * [`SchemaTree`] — declare `p(C | parent)` explicitly ("derive or
//!   estimate from the semantics in the schema");
//! * [`ProbabilityModel::estimate`] — "approximate it by data sampling":
//!   count, over a sample of documents, the fraction containing each path.
//!   Because a document containing a path also contains every prefix, the
//!   chain-rule telescopes and the per-path document frequency *is*
//!   `p(C | root)` — including the paper's "second factor" for value nodes
//!   (the probability that the value equals `v`), since value paths are
//!   counted per concrete value designator.
//!
//! The measurement side of `w(C)` lives in [`workload`]: a
//! [`WorkloadProfile`] accumulates per-class query frequency, result
//! cardinality, and latency from the live query stream, so a later
//! compaction can derive the weights instead of guessing them.
#![forbid(unsafe_code)]

pub mod workload;

pub use workload::{ClassStats, WorkloadProfile, WorkloadRecorder};

use std::collections::{HashMap, HashSet};
use xseq_sequence::PriorityMap;
use xseq_xml::{Document, PathId, PathTable};

/// Query-tuning weights `w(C)` keyed by path; default 1.0 (Section 5.2:
/// "we assign a weight w(C), which reflects the query frequency and
/// selectivity of node C").
#[derive(Debug, Clone)]
pub struct WeightMap {
    map: HashMap<PathId, f64>,
    default: f64,
}

impl Default for WeightMap {
    fn default() -> Self {
        WeightMap {
            map: HashMap::new(),
            default: 1.0,
        }
    }
}

impl WeightMap {
    /// A map where every path weighs `default`.
    pub fn with_default(default: f64) -> Self {
        WeightMap {
            map: HashMap::new(),
            default,
        }
    }

    /// Boosts (or demotes) one path.
    pub fn set(&mut self, p: PathId, w: f64) {
        self.map.insert(p, w);
    }

    /// The weight of a path.
    pub fn get(&self, p: PathId) -> f64 {
        self.map.get(&p).copied().unwrap_or(self.default)
    }
}

/// Explicit schema probabilities: `p(C | parent)` per path (Figure 12).
#[derive(Debug, Clone, Default)]
pub struct SchemaTree {
    cond: HashMap<PathId, f64>,
}

impl SchemaTree {
    /// Creates an empty schema (every conditional defaults to 1.0).
    pub fn new() -> Self {
        SchemaTree::default()
    }

    /// Declares `p(path | parent(path)) = p`.
    pub fn set_cond(&mut self, path: PathId, p: f64) {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.cond.insert(path, p);
    }

    /// The conditional probability of `path` given its parent (default 1.0).
    pub fn cond(&self, path: PathId) -> f64 {
        self.cond.get(&path).copied().unwrap_or(1.0)
    }

    /// Chain rule: `p(C|root) = p(C|parent) · p(parent|root)` (Figure 13).
    pub fn root_probability(&self, paths: &PathTable, path: PathId) -> f64 {
        let mut p = 1.0;
        let mut cur = path;
        while cur != PathId::ROOT {
            p *= self.cond(cur);
            cur = paths.parent(cur);
        }
        p
    }

    /// Builds sequencing priorities `p'(C|root) = p(C|root) · w(C)` for all
    /// declared paths.
    pub fn priorities(&self, paths: &PathTable, weights: &WeightMap) -> PriorityMap {
        let mut pm = PriorityMap::new(0.0);
        for &path in self.cond.keys() {
            pm.insert(path, self.root_probability(paths, path) * weights.get(path));
        }
        pm
    }
}

/// Probabilities estimated from a document sample.
#[derive(Debug, Clone, Default)]
pub struct ProbabilityModel {
    root_prob: HashMap<PathId, f64>,
    /// Paths observed with sibling multiplicity ≥ 2 (identical siblings).
    group_paths: HashSet<PathId>,
    sample_size: usize,
}

impl ProbabilityModel {
    /// Estimates `p(C|root)` for every path occurring in (a sample of) the
    /// documents: the fraction of sampled documents containing the path.
    ///
    /// `sample_cap` bounds how many documents are inspected (0 = all);
    /// sampling takes every ⌈n/cap⌉-th document so it is deterministic.
    pub fn estimate(docs: &[Document], paths: &mut PathTable, sample_cap: usize) -> Self {
        let stride = if sample_cap == 0 || docs.len() <= sample_cap {
            1
        } else {
            docs.len().div_ceil(sample_cap)
        };
        let mut count: HashMap<PathId, usize> = HashMap::new();
        let mut group_paths = HashSet::new();
        let mut sampled = 0usize;
        let mut distinct = HashSet::new();
        let mut seen_in_doc = HashSet::new();
        for doc in docs.iter().step_by(stride) {
            sampled += 1;
            distinct.clear();
            let enc = doc.path_encode(paths);
            for &p in &enc {
                distinct.insert(p);
            }
            for &p in &distinct {
                *count.entry(p).or_insert(0) += 1;
            }
            // identical siblings: a path occurring twice under one parent
            for n in doc.node_ids() {
                seen_in_doc.clear();
                for &c in doc.children(n) {
                    if !seen_in_doc.insert(enc[c as usize]) {
                        group_paths.insert(enc[c as usize]);
                    }
                }
            }
        }
        let n = sampled.max(1) as f64;
        ProbabilityModel {
            root_prob: count.into_iter().map(|(p, c)| (p, c as f64 / n)).collect(),
            group_paths,
            sample_size: sampled,
        }
    }

    /// Estimated `p(C|root)` (0.0 for never-seen paths).
    pub fn root_probability(&self, path: PathId) -> f64 {
        self.root_prob.get(&path).copied().unwrap_or(0.0)
    }

    /// Estimated `p(C|parent)` = `p(C|root) / p(parent|root)`.
    pub fn cond_probability(&self, paths: &PathTable, path: PathId) -> f64 {
        let parent = paths.parent(path);
        if parent == PathId::ROOT {
            return self.root_probability(path);
        }
        let pp = self.root_probability(parent);
        if pp == 0.0 {
            0.0
        } else {
            self.root_probability(path) / pp
        }
    }

    /// Number of documents actually sampled.
    pub fn sample_size(&self) -> usize {
        self.sample_size
    }

    /// Number of distinct paths with estimates.
    pub fn path_count(&self) -> usize {
        self.root_prob.len()
    }

    /// Builds sequencing priorities `p'(C|root) = p(C|root) · w(C)`,
    /// carrying the observed group paths (so the emitter applies subtree
    /// contiguity uniformly across documents) and dictionary-wide block
    /// priorities (so documents order their contiguous blocks identically).
    pub fn priorities(&self, paths: &PathTable, weights: &WeightMap) -> PriorityMap {
        let mut pm = PriorityMap::new(0.0);
        for (&p, &prob) in &self.root_prob {
            pm.insert(p, prob * weights.get(p));
        }
        for &p in &self.group_paths {
            pm.mark_contiguous(p);
        }
        // block priority of a path = min weighted priority over every known
        // path extending it (including itself)
        let mut block: HashMap<PathId, f64> = HashMap::new();
        for (&p, &prob) in &self.root_prob {
            let v = prob * weights.get(p);
            let mut cur = p;
            loop {
                let e = block.entry(cur).or_insert(f64::INFINITY);
                *e = e.min(v);
                if cur == PathId::ROOT {
                    break;
                }
                cur = paths.parent(cur);
            }
        }
        for (p, m) in block {
            pm.set_block_priority(p, m);
        }
        pm
    }

    /// Paths observed with identical siblings.
    pub fn group_paths(&self) -> &HashSet<PathId> {
        &self.group_paths
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xseq_xml::{Symbol, SymbolTable, ValueMode};

    fn fixture() -> (SymbolTable, PathTable) {
        (
            SymbolTable::with_value_mode(ValueMode::Intern),
            PathTable::new(),
        )
    }

    fn path(st: &mut SymbolTable, pt: &mut PathTable, spec: &str) -> PathId {
        let syms: Vec<Symbol> = spec
            .split('.')
            .map(|part| {
                if let Some(v) = part.strip_prefix('\'') {
                    st.val(v)
                } else {
                    st.elem(part)
                }
            })
            .collect();
        pt.intern(&syms)
    }

    #[test]
    fn figure13_chain_rule() {
        // Figure 12 conditionals: p(R|P)=0.9 (per Fig 13: p(R|root)=0.9),
        // p(U|R)=0.8, p(M|U)=0.8, p(L|R)=0.4, p(v3|L)=0.1, p(v1|P)=0.001,
        // p(v2|M)=0.001.
        let (mut st, mut pt) = fixture();
        let p = path(&mut st, &mut pt, "P");
        let pr = path(&mut st, &mut pt, "P.R");
        let pru = path(&mut st, &mut pt, "P.R.U");
        let prum = path(&mut st, &mut pt, "P.R.U.M");
        let prl = path(&mut st, &mut pt, "P.R.L");
        let prlv3 = path(&mut st, &mut pt, "P.R.L.'v3");
        let pv1 = path(&mut st, &mut pt, "P.'v1");
        let prumv2 = path(&mut st, &mut pt, "P.R.U.M.'v2");

        let mut schema = SchemaTree::new();
        schema.set_cond(p, 1.0);
        schema.set_cond(pr, 0.9);
        schema.set_cond(pru, 0.8);
        schema.set_cond(prum, 0.8);
        schema.set_cond(prl, 0.4);
        schema.set_cond(prlv3, 0.1);
        schema.set_cond(pv1, 0.001);
        schema.set_cond(prumv2, 0.001);

        // Figure 13's derived values.
        let close = |a: f64, b: f64| (a - b).abs() < 1e-12;
        assert!(close(schema.root_probability(&pt, p), 1.0));
        assert!(close(schema.root_probability(&pt, pr), 0.9));
        assert!(
            close(schema.root_probability(&pt, pru), 0.72),
            "p(U|root) = 0.8 × 0.9 = 0.72 by the chain rule (Fig. 13 prints 0.8)"
        );
        assert!(close(schema.root_probability(&pt, prl), 0.36));
        assert!(close(schema.root_probability(&pt, prlv3), 0.036));
        assert!(close(schema.root_probability(&pt, pv1), 0.001));
        // p(M|root) = 0.8 × 0.72; p(v2|root) = 0.001 × that
        assert!(close(schema.root_probability(&pt, prum), 0.576));
        assert!(close(schema.root_probability(&pt, prumv2), 0.000576));
    }

    #[test]
    fn priorities_follow_weights() {
        let (mut st, mut pt) = fixture();
        let pa = path(&mut st, &mut pt, "P.A");
        let pb = path(&mut st, &mut pt, "P.B");
        let p = path(&mut st, &mut pt, "P");

        let mut schema = SchemaTree::new();
        schema.set_cond(p, 1.0);
        schema.set_cond(pa, 0.9);
        schema.set_cond(pb, 0.5);

        let pm = schema.priorities(&pt, &WeightMap::default());
        assert!(pm.get(pa) > pm.get(pb));

        // Boosting B (frequently queried, highly selective) flips the order.
        let mut w = WeightMap::default();
        w.set(pb, 10.0);
        let pm = schema.priorities(&pt, &w);
        assert!(pm.get(pb) > pm.get(pa));
    }

    #[test]
    fn estimation_counts_document_fractions() {
        let (mut st, mut pt) = fixture();
        let a = st.elem("a");
        let b = st.elem("b");
        let c = st.elem("c");
        // 4 docs: all have root a; 2 have child b; 1 has child c.
        let mut docs = Vec::new();
        for i in 0..4 {
            let mut d = Document::with_root(a);
            let r = d.root().unwrap();
            if i < 2 {
                d.child(r, b);
            }
            if i == 0 {
                d.child(r, c);
            }
            docs.push(d);
        }
        let model = ProbabilityModel::estimate(&docs, &mut pt, 0);
        let pa = pt.lookup(&[a]).unwrap();
        let pab = pt.lookup(&[a, b]).unwrap();
        let pac = pt.lookup(&[a, c]).unwrap();
        assert_eq!(model.sample_size(), 4);
        assert_eq!(model.root_probability(pa), 1.0);
        assert_eq!(model.root_probability(pab), 0.5);
        assert_eq!(model.root_probability(pac), 0.25);
        // conditional = root fraction here because parent prob is 1
        assert_eq!(model.cond_probability(&pt, pab), 0.5);
        assert_eq!(model.path_count(), 3);
    }

    #[test]
    fn estimation_parent_ge_child() {
        // The monotonicity Algorithm 2 relies on: a parent's probability is
        // at least as high as any child's.
        let (mut st, mut pt) = fixture();
        let a = st.elem("a");
        let b = st.elem("b");
        let c = st.elem("c");
        let mut docs = Vec::new();
        for i in 0..10 {
            let mut d = Document::with_root(a);
            let r = d.root().unwrap();
            if i % 2 == 0 {
                let bn = d.child(r, b);
                if i % 4 == 0 {
                    d.child(bn, c);
                }
            }
            docs.push(d);
        }
        let model = ProbabilityModel::estimate(&docs, &mut pt, 0);
        for p in pt.iter().skip(1) {
            let parent = pt.parent(p);
            if parent != PathId::ROOT {
                assert!(
                    model.root_probability(parent) >= model.root_probability(p),
                    "monotonicity violated"
                );
            }
        }
    }

    #[test]
    fn sampling_cap_is_respected_and_deterministic() {
        let (mut st, mut pt) = fixture();
        let a = st.elem("a");
        let docs: Vec<Document> = (0..100).map(|_| Document::with_root(a)).collect();
        let m1 = ProbabilityModel::estimate(&docs, &mut pt, 10);
        let m2 = ProbabilityModel::estimate(&docs, &mut pt, 10);
        assert!(m1.sample_size() <= 10);
        assert_eq!(m1.sample_size(), m2.sample_size());
        let pa = pt.lookup(&[a]).unwrap();
        assert_eq!(m1.root_probability(pa), 1.0);
    }

    #[test]
    fn unseen_paths_have_zero_probability() {
        let (mut st, mut pt) = fixture();
        let a = st.elem("a");
        let z = st.elem("z");
        let docs = vec![Document::with_root(a)];
        let model = ProbabilityModel::estimate(&docs, &mut pt, 0);
        let paz = pt.intern(&[a, z]);
        assert_eq!(model.root_probability(paz), 0.0);
        assert_eq!(model.cond_probability(&pt, paz), 0.0);
    }

    #[test]
    fn value_distribution_is_the_second_factor() {
        // Paper: p(C=v1|P) combines existence probability and value
        // distribution. Counting concrete value paths gives exactly that.
        let (mut st, mut pt) = fixture();
        let a = st.elem("a");
        let l = st.elem("l");
        let mut docs = Vec::new();
        for i in 0..10 {
            let mut d = Document::with_root(a);
            let r = d.root().unwrap();
            let ln = d.child(r, l);
            // value exists in 10/10 docs; 'x' in 8, 'y' in 2
            let v = if i < 8 { st.val("x") } else { st.val("y") };
            d.child(ln, v);
            docs.push(d);
        }
        let model = ProbabilityModel::estimate(&docs, &mut pt, 0);
        let x = st.val("x");
        let y = st.val("y");
        let alx = pt.lookup(&[a, l, x]).unwrap();
        let aly = pt.lookup(&[a, l, y]).unwrap();
        assert!((model.root_probability(alx) - 0.8).abs() < 1e-12);
        assert!((model.root_probability(aly) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn weight_map_defaults() {
        let w = WeightMap::default();
        assert_eq!(w.get(PathId(5)), 1.0);
        let w2 = WeightMap::with_default(0.5);
        assert_eq!(w2.get(PathId(5)), 0.5);
    }

    #[test]
    #[should_panic(expected = "probability out of range")]
    fn schema_rejects_bad_probability() {
        let mut schema = SchemaTree::new();
        schema.set_cond(PathId(1), 1.5);
    }
}
