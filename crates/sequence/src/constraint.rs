//! Constraints on node order: `f1`, `f2` (forward prefix), validation, and
//! the Theorem 1 decoder.
//!
//! Definition 1 (constraint): a boolean function `f(·,·)` such that for every
//! element `p_j` of the sequence and every proper prefix `t ⊂ p_j` there is
//! **exactly one** element `p_i = t` with `f(p_i, p_j) = true` — `f` pins
//! down each node's ancestors unambiguously.
//!
//! * `f1(p_i, p_j) ≡ p_i ⊂ p_j` (Eq. 2) — a constraint only when the tree has
//!   no identical sibling nodes (each path occurs once), in which case the
//!   node order is completely free.
//! * `f2(p_i, p_j) ≡ p_i is a forward prefix of p_j` (Eq. 3) — resolves the
//!   ambiguity identical siblings introduce.  Definition 2: among the
//!   occurrences of a prefix `t` of `p_i`, the forward prefix is the closest
//!   occurrence *before* `p_i`; if none precedes, the closest occurrence
//!   after it.

use crate::Sequence;
use std::collections::HashMap;
use std::fmt;
use xseq_xml::{Document, PathId, PathTable};

/// Why a sequence failed to decode as a constraint sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The sequence is empty.
    Empty,
    /// Element `index` has a proper prefix that never occurs in the sequence,
    /// violating Definition 1.
    MissingAncestor {
        /// Offending element position.
        index: usize,
    },
    /// More than one element has a depth-1 path — a forest, not a tree.
    MultipleRoots,
    /// The depth-1 element is not unique enough to be a root (e.g. no
    /// depth-1 element at all).
    NoRoot,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Empty => write!(f, "empty sequence"),
            DecodeError::MissingAncestor { index } => {
                write!(f, "element {index} has a prefix that never occurs")
            }
            DecodeError::MultipleRoots => write!(f, "more than one depth-1 element"),
            DecodeError::NoRoot => write!(f, "no depth-1 element"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Finds the index of the forward prefix of element `i` for prefix path `t`
/// (Definition 2): the closest occurrence of `t` before position `i`, or, if
/// none precedes, the earliest occurrence after `i`.  Returns `None` when `t`
/// never occurs.
pub fn forward_prefix(seq: &Sequence, i: usize, t: PathId) -> Option<usize> {
    let elems = seq.elems();
    if let Some(j) = (0..i).rev().find(|&j| elems[j] == t) {
        return Some(j);
    }
    (i + 1..elems.len()).find(|&j| elems[j] == t)
}

/// Decodes a constraint sequence under `f2` into its unique tree
/// (Theorem 1).  Node labels are recovered from the last symbol of each
/// element's path.
pub fn decode_f2(seq: &Sequence, paths: &PathTable) -> Result<Document, DecodeError> {
    if seq.is_empty() {
        return Err(DecodeError::Empty);
    }
    let elems = seq.elems();

    // Locate the root: the unique depth-1 element.
    let mut root_idx = None;
    for (i, &p) in elems.iter().enumerate() {
        if paths.depth(p) == 1 {
            if root_idx.is_some() {
                return Err(DecodeError::MultipleRoots);
            }
            root_idx = Some(i);
        }
    }
    let root_idx = root_idx.ok_or(DecodeError::NoRoot)?;

    // Attach every other element to its forward prefix.
    let mut parent_of = vec![usize::MAX; elems.len()];
    for (i, &p) in elems.iter().enumerate() {
        if i == root_idx {
            continue;
        }
        let t = paths.parent(p);
        if t == PathId::ROOT {
            // depth-1 handled above
            return Err(DecodeError::MultipleRoots);
        }
        let j = forward_prefix(seq, i, t).ok_or(DecodeError::MissingAncestor { index: i })?;
        parent_of[i] = j;
    }

    // Build the document: create nodes in an order where parents come first.
    // Parent elements always have strictly smaller path depth, so sorting
    // positions by depth gives a valid creation order.
    let mut order: Vec<usize> = (0..elems.len()).collect();
    order.sort_by_key(|&i| paths.depth(elems[i]));

    let mut doc = Document::new();
    let mut node_of: HashMap<usize, u32> = HashMap::with_capacity(elems.len());
    for &i in &order {
        let sym = paths.last(elems[i]).expect("non-root path");
        if i == root_idx {
            doc = Document::with_root(sym);
            node_of.insert(
                i,
                doc.root().expect("Document::with_root always has a root"),
            );
        } else {
            let parent_node = node_of[&parent_of[i]];
            let n = doc.child(parent_node, sym);
            node_of.insert(i, n);
        }
    }
    Ok(doc)
}

/// Validates that `seq` is a well-formed `f2` constraint sequence: it decodes
/// to a tree and the multiset of node encodings of that tree equals the
/// multiset of sequence elements.
pub fn validate_f2(seq: &Sequence, paths: &mut PathTable) -> Result<(), DecodeError> {
    let doc = decode_f2(seq, paths)?;
    let enc = doc.path_encode(paths);
    let mut a: Vec<PathId> = seq.elems().to_vec();
    let mut b: Vec<PathId> = enc;
    a.sort();
    b.sort();
    if a == b {
        Ok(())
    } else {
        // A mismatch means some element was attached under a merged path that
        // changes its encoding — cannot happen for sequences produced by the
        // emitter, but hand-built sequences can trip it.
        Err(DecodeError::MissingAncestor { index: 0 })
    }
}

/// The paper's `f1` (Eq. 2): plain prefix.  Only a *constraint* in the sense
/// of Definition 1 when no path occurs twice in the sequence; this predicate
/// checks that precondition.
pub fn f1_applicable(seq: &Sequence) -> bool {
    let mut seen = std::collections::HashSet::with_capacity(seq.len());
    seq.elems().iter().all(|&p| seen.insert(p))
}

#[cfg(test)]
mod tests {
    use super::*;
    use xseq_xml::{PathTable, Symbol, SymbolTable, ValueMode};

    struct Fixture {
        st: SymbolTable,
        pt: PathTable,
    }

    impl Fixture {
        fn new() -> Self {
            Fixture {
                st: SymbolTable::with_value_mode(ValueMode::Intern),
                pt: PathTable::new(),
            }
        }

        /// Interns a path written like "P.D.L" (values prefixed with ').
        fn p(&mut self, spec: &str) -> PathId {
            let syms: Vec<Symbol> = spec
                .split('.')
                .map(|part| {
                    if let Some(v) = part.strip_prefix('\'') {
                        self.st.val(v)
                    } else {
                        self.st.elem(part)
                    }
                })
                .collect();
            self.pt.intern(&syms)
        }

        fn seq(&mut self, specs: &[&str]) -> Sequence {
            Sequence(specs.iter().map(|s| self.p(s)).collect())
        }
    }

    #[test]
    fn forward_prefix_definition_example() {
        // Paper example: in ⟨P, PD, PDL, PDLv1, PD, PDM, PDMv3⟩ the SECOND
        // PD is the forward prefix of PDMv3, the first is not.
        let mut f = Fixture::new();
        let seq = f.seq(&[
            "P",
            "P.D",
            "P.D.L",
            "P.D.L.'v1",
            "P.D",
            "P.D.M",
            "P.D.M.'v3",
        ]);
        let pd = f.p("P.D");
        let pdm = f.p("P.D.M");
        // forward prefix of PDMv3 (index 6) for prefix PD is index 4
        assert_eq!(forward_prefix(&seq, 6, pd), Some(4));
        // and for prefix PDM is index 5
        assert_eq!(forward_prefix(&seq, 6, pdm), Some(5));
        // forward prefix of PDL (index 2) for prefix PD is index 1
        assert_eq!(forward_prefix(&seq, 2, pd), Some(1));
    }

    #[test]
    fn forward_prefix_falls_back_to_later_occurrence() {
        // When no occurrence precedes, the earliest occurrence after wins.
        let mut f = Fixture::new();
        // ⟨PD-child-first⟩ style: P.D.L before its parent P.D
        let seq = f.seq(&["P", "P.D.L", "P.D"]);
        let pd = f.p("P.D");
        assert_eq!(forward_prefix(&seq, 1, pd), Some(2));
    }

    #[test]
    fn forward_prefix_missing() {
        let mut f = Fixture::new();
        let seq = f.seq(&["P", "P.D.L"]);
        let pd = f.p("P.D");
        assert_eq!(forward_prefix(&seq, 1, pd), None);
    }

    #[test]
    fn decode_depth_first_sequence_of_fig3b() {
        // Table 1: Fig 3(b) = ⟨P, Pv0, PD, PDL, PDLv1, PD, PDM, PDMv2⟩
        // decodes to P(v0, D(L(v1)), D(M(v2))).
        let mut f = Fixture::new();
        let seq = f.seq(&[
            "P",
            "P.'v0",
            "P.D",
            "P.D.L",
            "P.D.L.'v1",
            "P.D",
            "P.D.M",
            "P.D.M.'v2",
        ]);
        let doc = decode_f2(&seq, &f.pt).unwrap();
        assert_eq!(doc.len(), 8);
        let root = doc.root().unwrap();
        assert_eq!(doc.children(root).len(), 3);
        // the two D children each have exactly one child
        let d_nodes: Vec<_> = doc
            .children(root)
            .iter()
            .copied()
            .filter(|&n| doc.sym(n).is_elem())
            .collect();
        assert_eq!(d_nodes.len(), 2);
        for d in d_nodes {
            assert_eq!(doc.children(d).len(), 1);
            let mid = doc.children(d)[0];
            assert_eq!(doc.children(mid).len(), 1);
        }
        assert!(validate_f2(&seq, &mut f.pt).is_ok());
    }

    #[test]
    fn decode_fig3c_differs_from_fig3b() {
        // Table 1: Fig 3(c) = ⟨P, Pv0, PD, PD, PDL, PDLv1, PDM, PDMv2⟩:
        // the SECOND PD is the forward prefix of PDL and PDM, so both L and
        // M land under the second D, leaving the first D a leaf.
        let mut f = Fixture::new();
        let seq = f.seq(&[
            "P",
            "P.'v0",
            "P.D",
            "P.D",
            "P.D.L",
            "P.D.L.'v1",
            "P.D.M",
            "P.D.M.'v2",
        ]);
        let doc = decode_f2(&seq, &f.pt).unwrap();
        let root = doc.root().unwrap();
        let d_nodes: Vec<_> = doc
            .children(root)
            .iter()
            .copied()
            .filter(|&n| doc.sym(n).is_elem())
            .collect();
        assert_eq!(d_nodes.len(), 2);
        let child_counts: Vec<usize> = d_nodes.iter().map(|&d| doc.children(d).len()).collect();
        let mut sorted = child_counts.clone();
        sorted.sort();
        assert_eq!(sorted, vec![0, 2], "one leaf D, one D with both L and M");
    }

    #[test]
    fn table2_all_rows_decode_to_fig3c() {
        // Table 2 lists several constraint sequences of Figure 3(c); all
        // must decode to the same structure. (The paper's PBMv3 entries are
        // typos for PDMv3.)
        let mut f = Fixture::new();
        let rows: Vec<Vec<&str>> = vec![
            vec![
                "P",
                "P.'v0",
                "P.D",
                "P.D",
                "P.D.L",
                "P.D.L.'v1",
                "P.D.M",
                "P.D.M.'v3",
            ],
            vec![
                "P",
                "P.D",
                "P.'v0",
                "P.D",
                "P.D.M",
                "P.D.M.'v3",
                "P.D.L",
                "P.D.L.'v1",
            ],
            vec![
                "P",
                "P.D",
                "P.D.M",
                "P.D.M.'v3",
                "P.'v0",
                "P.D.L",
                "P.D.L.'v1",
                "P.D",
            ],
            vec![
                "P",
                "P.D",
                "P.D.M",
                "P.D.M.'v3",
                "P.D.L",
                "P.'v0",
                "P.D.L.'v1",
                "P.D",
            ],
        ];
        let docs: Vec<Document> = rows
            .iter()
            .map(|r| {
                let seq = f.seq(r);
                decode_f2(&seq, &f.pt).unwrap()
            })
            .collect();
        for w in docs.windows(2) {
            assert!(
                w[0].structurally_eq(&w[1]),
                "all Table 2 sequences decode to the same tree"
            );
        }
        // And it is Fig 3(c): one D with both L and M, one leaf D.
        let root = docs[0].root().unwrap();
        let counts: Vec<usize> = docs[0]
            .children(root)
            .iter()
            .filter(|&&n| docs[0].sym(n).is_elem())
            .map(|&n| docs[0].children(n).len())
            .collect();
        let mut sorted = counts;
        sorted.sort();
        assert_eq!(sorted, vec![0, 2]);
    }

    #[test]
    fn decode_rejects_missing_ancestor() {
        let mut f = Fixture::new();
        let seq = f.seq(&["P", "P.D.L"]);
        assert_eq!(
            decode_f2(&seq, &f.pt),
            Err(DecodeError::MissingAncestor { index: 1 })
        );
    }

    #[test]
    fn decode_rejects_forest_and_empty() {
        let mut f = Fixture::new();
        let two_roots = f.seq(&["P", "Q"]);
        assert_eq!(
            decode_f2(&two_roots, &f.pt),
            Err(DecodeError::MultipleRoots)
        );
        assert_eq!(
            decode_f2(&Sequence::default(), &f.pt),
            Err(DecodeError::Empty)
        );
        let no_root = f.seq(&["P.D"]);
        assert_eq!(decode_f2(&no_root, &f.pt), Err(DecodeError::NoRoot));
    }

    #[test]
    fn f1_applicability() {
        let mut f = Fixture::new();
        let unique = f.seq(&["P", "P.D", "P.D.L"]);
        assert!(f1_applicable(&unique));
        let dup = f.seq(&["P", "P.D", "P.D"]);
        assert!(!f1_applicable(&dup));
    }
}
