//! Sequencing strategies (Section 2.4 and Algorithm 2).
//!
//! Constraint sequencing is controlled by a constraint `f` and a user
//! strategy `g`.  All strategies here emit sequences valid under `f2`
//! (forward prefix), with one documented exception: breadth-first ordering
//! is only valid on trees without identical sibling nodes, exactly like the
//! paper, which evaluates BF only on its `I = 0` synthetic datasets.
//!
//! The probability-ordered strategy is the paper's `g_best`: always emit the
//! available node whose schema counterpart has the largest weighted root
//! probability `p'(C|root)` (Eq. 6), so that sequences across a dataset share
//! the longest possible prefixes.  The identical-sibling rule of Algorithm 2
//! ("if `c` has identical siblings, sequentialize(`c`)") is enforced by a
//! recursive emitter shared by all priority-driven strategies.

use crate::Sequence;
use std::collections::{HashMap, VecDeque};
use xseq_telemetry::HeapSize;
use xseq_xml::{Document, NodeId, PathId, PathTable};

/// Priorities for path encodings, produced by the schema/statistics layer
/// (`p'(C|root) = p(C|root) · w(C)`), plus the set of *group paths* —
/// paths observed with sibling multiplicity ≥ 2 anywhere in the dataset.
///
/// Group paths are emitted with their whole subtree contiguous in **every**
/// document.  Applying the identical-sibling contiguity rule only where a
/// document locally has duplicates would make sequence shapes
/// document-dependent (a doc with one `A` and a doc with two `A`s would
/// diverge immediately after `A`), destroying exactly the prefix sharing
/// the probability strategy exists to maximize.
#[derive(Debug, Clone, Default)]
pub struct PriorityMap {
    map: HashMap<PathId, f64>,
    default: f64,
    contiguous: std::collections::HashSet<PathId>,
    /// Per path: the minimum priority over every known path extending it —
    /// the scheduling priority of a contiguous block rooted there.
    block: HashMap<PathId, f64>,
}

impl PriorityMap {
    /// Creates a map returning `default` for unknown paths.
    pub fn new(default: f64) -> Self {
        PriorityMap {
            map: HashMap::new(),
            default,
            contiguous: std::collections::HashSet::new(),
            block: HashMap::new(),
        }
    }

    /// Sets the block (subtree-minimum) priority of a path.
    pub fn set_block_priority(&mut self, p: PathId, priority: f64) {
        self.block.insert(p, priority);
    }

    /// The block priority of a path, when known.
    pub fn block_priority(&self, p: PathId) -> Option<f64> {
        self.block.get(&p).copied()
    }

    /// Marks a path as a group path (observed identical siblings): its
    /// subtrees are emitted contiguously in every document.
    pub fn mark_contiguous(&mut self, p: PathId) {
        self.contiguous.insert(p);
    }

    /// True when `p` must be emitted with a contiguous subtree.
    pub fn is_contiguous(&self, p: PathId) -> bool {
        self.contiguous.contains(&p)
    }

    /// Sets the priority of one path.
    pub fn insert(&mut self, p: PathId, priority: f64) {
        self.map.insert(p, priority);
    }

    /// The priority of a path.
    pub fn get(&self, p: PathId) -> f64 {
        self.map.get(&p).copied().unwrap_or(self.default)
    }

    /// Number of explicit entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no explicit entries exist.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// A sequencing strategy `g`.
#[derive(Debug, Clone)]
pub enum Strategy {
    /// Depth-first traversal order (children canonicalized by symbol) — the
    /// sequencing ViST builds on.
    DepthFirst,
    /// Breadth-first (level) order.  **Valid only without identical sibling
    /// nodes**; the emitter panics in debug builds if misused, and the paper
    /// likewise only evaluates BF on `I = 0` data.
    BreadthFirst,
    /// Uniformly random order subject to the constraint; deterministic for a
    /// given seed (per-node priorities from a splitmix64 stream).  Because
    /// the order is per-node rather than per-path, random sequences are
    /// *not* query-consistent — the paper (and this crate) uses Random only
    /// for the index-size comparisons.
    Random {
        /// RNG seed.
        seed: u64,
    },
    /// The paper's `g_best`: highest `p'(C|root)` first (Algorithm 2).
    Probability(PriorityMap),
}

impl Strategy {
    /// True when a stored sequence is exactly re-encodable from its decoded
    /// tree: decode (Theorem 1) followed by re-sequencing with the same
    /// strategy reproduces the sequence element for element.
    ///
    /// Holds for the top-down orders whose sibling emission is a pure
    /// function of the path — depth-first (stable symbol order) and
    /// probability (path-keyed priorities).  `Random` ranks per node id, so
    /// re-encoding may legally reorder.  `BreadthFirst` is excluded too:
    /// the decoder attaches each element under the most recent matching
    /// prefix, which normalizes sibling attachment, and when equal-path
    /// siblings at one level carry children the original level order is not
    /// recoverable — the re-encoding is a legal reordering, not corruption.
    pub fn reencode_is_canonical(&self) -> bool {
        matches!(self, Strategy::DepthFirst | Strategy::Probability(_))
    }

    /// Short name used in benchmark output ("DF", "BF", "Random", "CS").
    pub fn short_name(&self) -> &'static str {
        match self {
            Strategy::DepthFirst => "DF",
            Strategy::BreadthFirst => "BF",
            Strategy::Random { .. } => "Random",
            Strategy::Probability(_) => "CS",
        }
    }
}

/// Heap attribution for a priority map: its three path-keyed tables.
impl HeapSize for PriorityMap {
    fn heap_bytes(&self) -> usize {
        self.map.heap_bytes() + self.contiguous.heap_bytes() + self.block.heap_bytes()
    }
}

/// Heap attribution for a strategy: only `Probability` owns a heap (its
/// priority map).
impl HeapSize for Strategy {
    fn heap_bytes(&self) -> usize {
        match self {
            Strategy::Probability(m) => m.heap_bytes(),
            Strategy::DepthFirst | Strategy::BreadthFirst | Strategy::Random { .. } => 0,
        }
    }
}

/// Sequences `doc` under constraint `f2` with strategy `g`.
///
/// Interns any new paths into `paths`; the result has exactly one element
/// per tree node.
pub fn sequence_document(doc: &Document, paths: &mut PathTable, strategy: &Strategy) -> Sequence {
    sequence_nodes(doc, paths, strategy).0
}

/// Like [`sequence_document`], but also returns which tree node produced
/// each sequence position — the query layer needs this to know, for every
/// element, the position of its tree parent.
pub fn sequence_nodes(
    doc: &Document,
    paths: &mut PathTable,
    strategy: &Strategy,
) -> (Sequence, Vec<NodeId>) {
    if doc.root().is_none() {
        return (Sequence::default(), Vec::new());
    }
    let enc = doc.path_encode(paths);
    let order = emit_order(doc, &enc, strategy);
    // PANIC-FREE: enc has one entry per node and order holds node ids
    let seq = Sequence(order.iter().map(|&n| enc[n as usize]).collect());
    (seq, order)
}

/// Read-only [`sequence_nodes`]: resolves path encodings against an
/// immutable [`PathTable`], returning `None` when any node's path was
/// never interned.
///
/// This is the shared-read query path: the table was fully populated at
/// build time, so a miss proves the document (a query instantiation)
/// cannot match anything in the index.  When it returns `Some`, the
/// result is element-for-element identical to [`sequence_nodes`].
pub fn sequence_nodes_readonly(
    doc: &Document,
    paths: &PathTable,
    strategy: &Strategy,
) -> Option<(Sequence, Vec<NodeId>)> {
    if doc.root().is_none() {
        return Some((Sequence::default(), Vec::new()));
    }
    let enc = doc.path_encode_readonly(paths)?;
    let order = emit_order(doc, &enc, strategy);
    // PANIC-FREE: enc has one entry per node and order holds node ids
    let seq = Sequence(order.iter().map(|&n| enc[n as usize]).collect());
    Some((seq, order))
}

/// The strategy-driven emission order over an already-encoded document.
/// Pure in `(doc, enc, strategy)` — interning happens strictly before.
fn emit_order(doc: &Document, enc: &[PathId], strategy: &Strategy) -> Vec<NodeId> {
    // PANIC-FREE: both callers return early when the document is empty
    let root = doc
        .root()
        .expect("emit order is only computed for non-empty documents");
    match strategy {
        Strategy::DepthFirst => {
            // Canonical depth-first: children visited in symbol order
            // (stable for identical symbols).  Canonicalizing sibling order
            // makes the relative order of any two *distinct* paths identical
            // across all documents and queries — without it, subsequence
            // matching would depend on raw document order and a query could
            // only be answered by enumerating every sibling permutation
            // (the paper's isomorphism expansion then only needs to cover
            // identical-label groups).
            let mut out = Vec::with_capacity(doc.len());
            let mut stack = vec![root];
            while let Some(n) = stack.pop() {
                out.push(n);
                let mut kids = doc.children(n).to_vec();
                kids.sort_by_key(|&c| doc.sym(c).raw());
                // reversed so the smallest symbol is visited first
                stack.extend(kids.into_iter().rev());
            }
            out
        }
        Strategy::BreadthFirst => {
            debug_assert!(
                !has_identical_siblings(doc),
                "breadth-first sequencing is only valid without identical siblings"
            );
            let mut out = Vec::with_capacity(doc.len());
            let mut queue = VecDeque::from([root]);
            while let Some(n) = queue.pop_front() {
                out.push(n);
                let mut kids = doc.children(n).to_vec();
                kids.sort_by_key(|&c| doc.sym(c).raw());
                queue.extend(kids);
            }
            out
        }
        Strategy::Random { seed } => {
            let pri: Vec<f64> = (0..doc.len() as u64)
                .map(|n| splitmix64(seed.wrapping_add(0x9e37_79b9).wrapping_mul(31) ^ n) as f64)
                .collect();
            // PANIC-FREE: pri has exactly doc.len() entries, one per node
            emit_with_priority(doc, enc, &|n: NodeId| pri[n as usize])
        }
        Strategy::Probability(map) => emit_with_priority_grouped(
            doc,
            enc,
            // PANIC-FREE: enc has one entry per node id
            &|n: NodeId| map.get(enc[n as usize]),
            &|p: PathId| map.is_contiguous(p),
            &|p: PathId| map.block_priority(p),
        ),
    }
}

/// True if any node of `doc` has two children with the same label.
pub fn has_identical_siblings(doc: &Document) -> bool {
    doc.node_ids().any(|n| {
        let kids = doc.children(n);
        for (i, &a) in kids.iter().enumerate() {
            // PANIC-FREE: i < kids.len(), so i + 1 is a valid range start
            for &b in &kids[i + 1..] {
                if doc.sym(a) == doc.sym(b) {
                    return true;
                }
            }
        }
        false
    })
}

/// True if `n` has a sibling with the same label ("identical sibling node").
fn has_identical_sibling(doc: &Document, n: NodeId) -> bool {
    match doc.parent(n) {
        None => false,
        Some(p) => doc
            .children(p)
            .iter()
            .any(|&s| s != n && doc.sym(s) == doc.sym(n)),
    }
}

/// The constraint-respecting emitter behind `Random` and `Probability`
/// (paper Algorithm 2).  Emits the subtree of the root; whenever the chosen
/// node has identical siblings, its whole subtree is emitted contiguously
/// (recursively) before any sibling may be selected, which keeps the output
/// a valid `f2` sequence.
///
/// Ties (equal priority) break by path id, then node id, so sequences are
/// deterministic and — crucially for subsequence matching — the relative
/// order of any two *distinct* paths is identical across every document and
/// query sequenced with the same priorities.
fn emit_with_priority(
    doc: &Document,
    enc: &[PathId],
    priority: &dyn Fn(NodeId) -> f64,
) -> Vec<NodeId> {
    emit_with_priority_grouped(doc, enc, priority, &|_| false, &|_| None)
}

fn emit_with_priority_grouped(
    doc: &Document,
    enc: &[PathId],
    priority: &dyn Fn(NodeId) -> f64,
    contiguous: &dyn Fn(PathId) -> bool,
    block_priority: &dyn Fn(PathId) -> Option<f64>,
) -> Vec<NodeId> {
    // A node emitted with a *contiguous subtree* brings its whole block
    // along, so its scheduling priority must reflect the block's rarest
    // content (otherwise a common group node drags near-unique values to
    // the front of every sequence and prefix sharing collapses).  The block
    // priority comes from the dictionary-wide subtree minimum when known
    // (doc-independent, so all documents order their blocks identically);
    // the per-document subtree minimum is the fallback.
    let mut minp = vec![f64::INFINITY; doc.len()];
    for &n in doc.preorder().iter().rev() {
        let mut m = priority(n);
        for &c in doc.children(n) {
            // PANIC-FREE: minp has one entry per document node id
            m = m.min(minp[c as usize]);
        }
        // PANIC-FREE: preorder yields ids < doc.len() == minp.len()
        minp[n as usize] = m;
    }
    let eff = move |c: NodeId| {
        // PANIC-FREE: same per-node table contract as minp above
        if has_identical_sibling(doc, c) || contiguous(enc[c as usize]) {
            block_priority(enc[c as usize]).unwrap_or(minp[c as usize])
        } else {
            priority(c)
        }
    };
    let mut out = Vec::with_capacity(doc.len());
    // PANIC-FREE: reached only through emit_order's non-empty guard
    let root = doc
        .root()
        .expect("emit order is only computed for non-empty documents");
    emit_subtree(doc, enc, &eff, contiguous, root, &mut out);
    out
}

// PANIC-FREE: avail indices come from 0..avail.len(); enc carries one
// entry per document node id
fn emit_subtree(
    doc: &Document,
    enc: &[PathId],
    priority: &dyn Fn(NodeId) -> f64,
    contiguous: &dyn Fn(PathId) -> bool,
    root: NodeId,
    out: &mut Vec<NodeId>,
) {
    out.push(root);
    // `avail`: nodes of this subtree whose parent is already emitted.
    let mut avail: Vec<NodeId> = doc.children(root).to_vec();
    while !avail.is_empty() {
        // Select the best available node.
        let mut best = 0;
        for i in 1..avail.len() {
            if better(doc, enc, priority, avail[i], avail[best]) {
                best = i;
            }
        }
        let c = avail.swap_remove(best);
        if has_identical_sibling(doc, c) || contiguous(enc[c as usize]) {
            emit_subtree(doc, enc, priority, contiguous, c, out);
        } else {
            out.push(c);
            avail.extend_from_slice(doc.children(c));
        }
    }
}

/// Strict "a should be emitted before b" ordering.
// PANIC-FREE: enc carries one entry per document node id
fn better(
    doc: &Document,
    enc: &[PathId],
    priority: &dyn Fn(NodeId) -> f64,
    a: NodeId,
    b: NodeId,
) -> bool {
    let (pa, pb) = (priority(a), priority(b));
    if pa != pb {
        return pa > pb;
    }
    let (ea, eb) = (enc[a as usize], enc[b as usize]);
    if ea != eb {
        return ea < eb;
    }
    // Identical path: document sibling order (node id) decides; isomorphism
    // expansion at query time enumerates the alternatives.
    let _ = doc;
    a < b
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::{decode_f2, validate_f2};
    use xseq_xml::{Document, PathTable, SymbolTable, ValueMode};

    fn st() -> SymbolTable {
        SymbolTable::with_value_mode(ValueMode::Intern)
    }

    /// Fig 3(b): P(v0, D(L(v1)), D(M(v2)))
    fn fig3b(stt: &mut SymbolTable) -> Document {
        let p = stt.elem("P");
        let d = stt.elem("D");
        let l = stt.elem("L");
        let m = stt.elem("M");
        let v0 = stt.val("xml");
        let v1 = stt.val("boston");
        let v2 = stt.val("johnson");
        let mut doc = Document::with_root(p);
        let root = doc.root().unwrap();
        doc.child(root, v0);
        let d1 = doc.child(root, d);
        let l1 = doc.child(d1, l);
        doc.child(l1, v1);
        let d2 = doc.child(root, d);
        let m1 = doc.child(d2, m);
        doc.child(m1, v2);
        doc
    }

    /// Fig 11(a): P(v1, R(U(M(v2)), L(v3)))
    fn fig11a(stt: &mut SymbolTable) -> Document {
        let p = stt.elem("P");
        let r = stt.elem("R");
        let u = stt.elem("U");
        let l = stt.elem("L");
        let m = stt.elem("M");
        let v1 = stt.val("v1");
        let v2 = stt.val("v2");
        let v3 = stt.val("v3");
        let mut doc = Document::with_root(p);
        let root = doc.root().unwrap();
        doc.child(root, v1);
        let rn = doc.child(root, r);
        let un = doc.child(rn, u);
        let mn = doc.child(un, m);
        doc.child(mn, v2);
        let ln = doc.child(rn, l);
        doc.child(ln, v3);
        doc
    }

    #[test]
    fn depth_first_matches_table1() {
        // Table 1, Fig 3(b) lists ⟨P, Pv0, PD, PDL, PDLv1, PD, PDM, PDMv2⟩
        // in document order; our DF canonicalizes sibling order by symbol
        // (elements before values), so the value child moves to the end —
        // same multiset, same structure, query-consistent ordering.
        let mut stt = st();
        let doc = fig3b(&mut stt);
        let mut paths = PathTable::new();
        let seq = sequence_document(&doc, &mut paths, &Strategy::DepthFirst);
        let rendered = seq.render(&paths, &stt);
        assert_eq!(
            rendered,
            "⟨P, PD, PDL, PDL'boston', PD, PDM, PDM'johnson', P'xml'⟩"
        );
    }

    #[test]
    fn all_strategies_roundtrip_fig3b() {
        let mut stt = st();
        let doc = fig3b(&mut stt);
        for strategy in [
            Strategy::DepthFirst,
            Strategy::Random { seed: 1 },
            Strategy::Random { seed: 99 },
            Strategy::Probability(PriorityMap::new(0.0)),
        ] {
            let mut paths = PathTable::new();
            let seq = sequence_document(&doc, &mut paths, &strategy);
            assert_eq!(seq.len(), doc.len());
            assert!(validate_f2(&seq, &mut paths).is_ok(), "{strategy:?}");
            let back = decode_f2(&seq, &paths).unwrap();
            assert!(back.structurally_eq(&doc), "{strategy:?}");
        }
    }

    #[test]
    fn breadth_first_on_tree_without_identical_siblings() {
        let mut stt = st();
        let doc = fig11a(&mut stt);
        assert!(!has_identical_siblings(&doc));
        let mut paths = PathTable::new();
        let seq = sequence_document(&doc, &mut paths, &Strategy::BreadthFirst);
        // Table 3 BF row (a), modulo canonical sibling order (elements
        // before values) and strict level order (the paper lists PRUMv2,
        // depth 5, before PRLv3, depth 4).
        assert_eq!(
            seq.render(&paths, &stt),
            "⟨P, PR, P'v1', PRU, PRL, PRUM, PRL'v3', PRUM'v2'⟩"
        );
        let back = decode_f2(&seq, &paths).unwrap();
        assert!(back.structurally_eq(&doc));
    }

    #[test]
    fn probability_strategy_orders_by_priority() {
        // Section 5.2 example: probabilities put structure nodes first and
        // rare values last: ⟨P, PR, PRU, PRUM, PRL, PRLv3, Pv1, PRUMv2⟩.
        let mut stt = st();
        let doc = fig11a(&mut stt);
        let mut paths = PathTable::new();
        let enc = doc.path_encode(&mut paths);

        let mut pm = PriorityMap::new(0.0);
        // Node ids in fig11a construction order: P=0,v1=1,R=2,U=3,M=4,v2=5,L=6,v3=7
        let pri = [1.0, 0.001, 0.9, 0.8, 0.64, 0.00064, 0.36, 0.036];
        for (n, &pr) in pri.iter().enumerate() {
            pm.insert(enc[n], pr);
        }
        let seq = sequence_document(&doc, &mut paths, &Strategy::Probability(pm));
        assert_eq!(
            seq.render(&paths, &stt),
            "⟨P, PR, PRU, PRUM, PRL, PRL'v3', P'v1', PRUM'v2'⟩"
        );
    }

    #[test]
    fn probability_sequences_share_long_prefixes() {
        // The motivating Impact 1: two documents differing only in values
        // share a long prefix under CS but not under DF (Table 3).
        let mut stt = st();
        let doc_a = fig11a(&mut stt);
        // doc_b: same structure, different values v5/v6 at the two leaves.
        let doc_b;
        {
            // rebuild with different values
            let p = stt.elem("P");
            let r = stt.elem("R");
            let u = stt.elem("U");
            let l = stt.elem("L");
            let m = stt.elem("M");
            let v5 = stt.val("v5");
            let v6 = stt.val("v6");
            let v3 = stt.val("v3");
            let mut d = Document::with_root(p);
            let root = d.root().unwrap();
            d.child(root, v5);
            let rn = d.child(root, r);
            let un = d.child(rn, u);
            let mn = d.child(un, m);
            d.child(mn, v6);
            let ln = d.child(rn, l);
            d.child(ln, v3);
            doc_b = d;
        }
        let mut paths = PathTable::new();
        let enc_a = doc_a.path_encode(&mut paths);
        let enc_b = doc_b.path_encode(&mut paths);

        let mut pm = PriorityMap::new(0.0005);
        let pri = [1.0, 0.001, 0.9, 0.8, 0.64, 0.00064, 0.36, 0.036];
        for (n, &pr) in pri.iter().enumerate() {
            pm.insert(enc_a[n], pr);
            if pr > 0.01 {
                pm.insert(enc_b[n], pr);
            }
        }
        let cs = Strategy::Probability(pm);
        let sa = sequence_document(&doc_a, &mut paths, &cs);
        let sb = sequence_document(&doc_b, &mut paths, &cs);
        let common_cs = sa
            .elems()
            .iter()
            .zip(sb.elems())
            .take_while(|(a, b)| a == b)
            .count();
        assert!(
            common_cs >= 6,
            "CS shares ≥6-element prefix, got {common_cs}"
        );

        let da = sequence_document(&doc_a, &mut paths, &Strategy::DepthFirst);
        let db = sequence_document(&doc_b, &mut paths, &Strategy::DepthFirst);
        let common_df = da
            .elems()
            .iter()
            .zip(db.elems())
            .take_while(|(a, b)| a == b)
            .count();
        // Canonical DF defers the varying value a little (document-order DF
        // as in Table 3 would share only the root), but CS still shares a
        // strictly longer prefix because it pushes *all* rare nodes last.
        assert!(
            common_df < common_cs,
            "CS beats DF: {common_df} vs {common_cs}"
        );
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let mut stt = st();
        let doc = fig3b(&mut stt);
        let mut p1 = PathTable::new();
        let mut p2 = PathTable::new();
        let s1 = sequence_document(&doc, &mut p1, &Strategy::Random { seed: 7 });
        let s2 = sequence_document(&doc, &mut p2, &Strategy::Random { seed: 7 });
        assert_eq!(s1, s2);
    }

    #[test]
    fn identical_sibling_subtrees_are_contiguous() {
        // Under any priority, once an identical sibling is selected its whole
        // subtree must be emitted before the other sibling appears.
        let mut stt = st();
        let doc = fig3b(&mut stt);
        let mut paths = PathTable::new();
        for seed in 0..20 {
            let seq = sequence_document(&doc, &mut paths, &Strategy::Random { seed });
            let pd = {
                let p = stt.elem("P");
                let d = stt.elem("D");
                paths.lookup(&[p, d]).unwrap()
            };
            let positions: Vec<usize> = seq
                .elems()
                .iter()
                .enumerate()
                .filter(|(_, &e)| e == pd)
                .map(|(i, _)| i)
                .collect();
            assert_eq!(positions.len(), 2);
            // Algorithm 2 emits an identical sibling's whole subtree
            // contiguously: each D (2 descendants) is immediately followed
            // by 2 PD-prefixed elements.
            for &pos in &positions {
                for off in 1..=2 {
                    let e = seq[pos + off];
                    assert!(
                        paths.is_proper_prefix(pd, e),
                        "seed {seed}: identical-sibling subtree not contiguous"
                    );
                }
            }
        }
    }

    #[test]
    fn readonly_sequencing_matches_interning_sequencing() {
        let mut stt = st();
        let doc = fig3b(&mut stt);
        for strategy in [
            Strategy::DepthFirst,
            Strategy::Random { seed: 3 },
            Strategy::Probability(PriorityMap::new(0.1)),
        ] {
            let mut paths = PathTable::new();
            let (seq, order) = sequence_nodes(&doc, &mut paths, &strategy);
            let ro = sequence_nodes_readonly(&doc, &paths, &strategy)
                .expect("all paths were interned by the mutable pass");
            assert_eq!(ro, (seq, order), "{strategy:?}");
        }
        // Against an empty table, every non-empty document misses.
        let empty = PathTable::new();
        assert_eq!(
            sequence_nodes_readonly(&doc, &empty, &Strategy::DepthFirst),
            None
        );
    }

    #[test]
    fn empty_document_gives_empty_sequence() {
        let mut paths = PathTable::new();
        let seq = sequence_document(&Document::new(), &mut paths, &Strategy::DepthFirst);
        assert!(seq.is_empty());
    }

    #[test]
    fn strategy_names() {
        assert_eq!(Strategy::DepthFirst.short_name(), "DF");
        assert_eq!(Strategy::BreadthFirst.short_name(), "BF");
        assert_eq!(Strategy::Random { seed: 0 }.short_name(), "Random");
        assert_eq!(
            Strategy::Probability(PriorityMap::new(0.0)).short_name(),
            "CS"
        );
    }
}
