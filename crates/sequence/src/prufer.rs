//! Prüfer codes — the "more succinct" ad hoc tree encoding the paper
//! contrasts with (Section 1, Tree Representation; used by PRIX).
//!
//! The paper's variant deletes leaves until a single node remains, so a tree
//! of `n` labelled nodes encodes to `n − 1` parent labels (one more than the
//! classic Prüfer code): "repeatedly delete the leaf node that has the
//! smallest label and append the label of its parent to the sequence."

use std::collections::BTreeMap;
use std::fmt;
use xseq_xml::{Document, NodeId};

/// Errors decoding a Prüfer sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PruferError {
    /// A label in the sequence does not belong to the label universe.
    UnknownLabel(u64),
    /// The sequence cannot be realized by any tree over the universe.
    Malformed,
    /// Duplicate labels in the universe.
    DuplicateLabel(u64),
}

impl fmt::Display for PruferError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PruferError::UnknownLabel(l) => write!(f, "label {l} not in universe"),
            PruferError::Malformed => write!(f, "sequence is not a valid Prüfer code"),
            PruferError::DuplicateLabel(l) => write!(f, "duplicate label {l}"),
        }
    }
}

impl std::error::Error for PruferError {}

/// Encodes a document whose node `n` carries label `labels[n]` into the
/// paper's Prüfer sequence.  Labels must be distinct.
pub fn prufer_encode(doc: &Document, labels: &[u64]) -> Result<Vec<u64>, PruferError> {
    assert_eq!(labels.len(), doc.len(), "one label per node");
    let mut seen = std::collections::HashSet::new();
    for &l in labels {
        if !seen.insert(l) {
            return Err(PruferError::DuplicateLabel(l));
        }
    }
    if doc.len() <= 1 {
        return Ok(Vec::new());
    }

    let mut remaining_children: Vec<usize> =
        doc.node_ids().map(|n| doc.children(n).len()).collect();
    // current leaves, ordered by label
    let mut leaves: BTreeMap<u64, NodeId> = doc
        .node_ids()
        .filter(|&n| doc.children(n).is_empty())
        .map(|n| (labels[n as usize], n))
        .collect();

    let mut out = Vec::with_capacity(doc.len() - 1);
    // When the root's last child is deleted every other node is gone, so the
    // loop guard stops before the root could ever be popped as a "leaf".
    while out.len() < doc.len() - 1 {
        let (&label, &leaf) = leaves.iter().next().expect("a leaf must exist");
        leaves.remove(&label);
        let parent = doc
            .parent(leaf)
            .expect("the root is never popped; see loop guard");
        out.push(labels[parent as usize]);
        remaining_children[parent as usize] -= 1;
        if remaining_children[parent as usize] == 0 {
            leaves.insert(labels[parent as usize], parent);
        }
    }
    Ok(out)
}

/// Decodes the paper's Prüfer sequence over a label universe back into
/// `(child, parent)` edges.  The universe has `seq.len() + 1` labels; the
/// node never deleted is the root and appears in no edge as a child.
pub fn prufer_decode(seq: &[u64], universe: &[u64]) -> Result<Vec<(u64, u64)>, PruferError> {
    if universe.len() != seq.len() + 1 {
        return Err(PruferError::Malformed);
    }
    let mut degree: BTreeMap<u64, usize> = BTreeMap::new();
    for &l in universe {
        if degree.insert(l, 1).is_some() {
            return Err(PruferError::DuplicateLabel(l));
        }
    }
    for &s in seq {
        match degree.get_mut(&s) {
            Some(d) => *d += 1,
            None => return Err(PruferError::UnknownLabel(s)),
        }
    }

    // A label is a current leaf iff its degree (1 + remaining occurrences as
    // a parent) is exactly 1.
    let mut leaves: std::collections::BTreeSet<u64> = degree
        .iter()
        .filter(|&(_, &d)| d == 1)
        .map(|(&l, _)| l)
        .collect();

    let mut edges = Vec::with_capacity(seq.len());
    for &parent in seq {
        let &leaf = leaves.iter().next().ok_or(PruferError::Malformed)?;
        leaves.remove(&leaf);
        edges.push((leaf, parent));
        let d = degree.get_mut(&parent).expect("validated above");
        *d -= 1;
        if *d == 1 {
            leaves.insert(parent);
        }
    }
    Ok(edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xseq_xml::{Document, SymbolTable};

    /// Figure 2(a) with the labelling that yields the paper's sequence
    /// ⟨5, 6, 2, 6, 6⟩: L=1, D₂=2, R=3, M=4, D₁=5, P=6.
    fn fig2a_labeled() -> (Document, Vec<u64>) {
        let mut st = SymbolTable::default();
        let p = st.elem("P");
        let r = st.elem("R");
        let d = st.elem("D");
        let l = st.elem("L");
        let m = st.elem("M");
        let mut doc = Document::with_root(p); // node 0
        let root = doc.root().unwrap();
        doc.child(root, r); // node 1
        let d1 = doc.child(root, d); // node 2
        doc.child(d1, l); // node 3
        let d2 = doc.child(root, d); // node 4
        doc.child(d2, m); // node 5
                          // labels per node id: P=6, R=3, D1=5, L=1, D2=2, M=4
        (doc, vec![6, 3, 5, 1, 2, 4])
    }

    #[test]
    fn paper_example_sequence() {
        let (doc, labels) = fig2a_labeled();
        let seq = prufer_encode(&doc, &labels).unwrap();
        assert_eq!(seq, vec![5, 6, 2, 6, 6]);
    }

    #[test]
    fn decode_paper_example() {
        let edges = prufer_decode(&[5, 6, 2, 6, 6], &[1, 2, 3, 4, 5, 6]).unwrap();
        let mut sorted = edges.clone();
        sorted.sort();
        // L(1)→D1(5), R(3)→P(6), M(4)→D2(2), D2(2)→P(6), D1(5)→P(6)
        assert_eq!(sorted, vec![(1, 5), (2, 6), (3, 6), (4, 2), (5, 6)]);
    }

    #[test]
    fn roundtrip_random_trees() {
        // Build a few deterministic random trees and round-trip them.
        let mut st = SymbolTable::default();
        let a = st.elem("a");
        for n in 2..30u64 {
            let mut doc = Document::with_root(a);
            for i in 1..n {
                // parent chosen pseudo-randomly among existing nodes
                let parent = ((i * 2654435761) % i) as u32;
                doc.child(parent, a);
            }
            let labels: Vec<u64> = (0..n).map(|i| i * 3 + 7).collect();
            let seq = prufer_encode(&doc, &labels).unwrap();
            assert_eq!(seq.len() as u64, n - 1);
            let mut universe = labels.clone();
            universe.sort();
            let edges = prufer_decode(&seq, &universe).unwrap();
            // edge set must equal the document's parent relation
            let mut expect: Vec<(u64, u64)> = doc
                .node_ids()
                .filter_map(|c| {
                    doc.parent(c)
                        .map(|p| (labels[c as usize], labels[p as usize]))
                })
                .collect();
            expect.sort();
            let mut got = edges;
            got.sort();
            assert_eq!(got, expect, "n = {n}");
        }
    }

    #[test]
    fn single_node_encodes_empty() {
        let mut st = SymbolTable::default();
        let a = st.elem("a");
        let doc = Document::with_root(a);
        assert_eq!(prufer_encode(&doc, &[9]).unwrap(), Vec::<u64>::new());
        assert_eq!(prufer_decode(&[], &[9]).unwrap(), Vec::new());
    }

    #[test]
    fn duplicate_labels_rejected() {
        let (doc, _) = fig2a_labeled();
        assert_eq!(
            prufer_encode(&doc, &[1, 1, 2, 3, 4, 5]),
            Err(PruferError::DuplicateLabel(1))
        );
    }

    #[test]
    fn unknown_label_rejected() {
        assert_eq!(
            prufer_decode(&[99], &[1, 2]),
            Err(PruferError::UnknownLabel(99))
        );
    }

    #[test]
    fn wrong_universe_size_rejected() {
        assert_eq!(prufer_decode(&[1], &[1]), Err(PruferError::Malformed));
    }
}
