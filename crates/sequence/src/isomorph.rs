//! Isomorphic sibling orderings — the cure for false dismissals.
//!
//! Section 3.2/3.3: the same XML structure can be drawn with identical-label
//! siblings in either order (Figure 5), and the two forms may sequence
//! differently.  "Given a query structure, we regard each of its isomorphism
//! structures as a different query, and union the results."
//!
//! Only siblings with the *same label* matter: the order of distinct-label
//! siblings is fully determined by the sequencing priorities, and permuting
//! same-label siblings with structurally identical subtrees changes nothing.
//! So this module enumerates, per parent, the permutations of each
//! same-label sibling group, deduplicates structurally identical outcomes,
//! and caps the total (queries with many ambiguous groups would otherwise
//! explode factorially).

use std::collections::HashSet;
use xseq_xml::{Document, NodeId};

/// Enumerates the distinct sibling-order variants of `doc`, up to `cap`
/// documents.  The original ordering is always the first variant.
pub fn isomorphic_variants(doc: &Document, cap: usize) -> Vec<Document> {
    let Some(root) = doc.root() else {
        return vec![doc.clone()];
    };
    let cap = cap.max(1);

    // Per node: the list of alternative child orderings (usually just one).
    // Order variants are child-id permutations where only same-label groups
    // are permuted.
    let mut orderings: Vec<Vec<Vec<NodeId>>> = Vec::with_capacity(doc.len());
    for n in doc.node_ids() {
        orderings.push(child_orderings(doc, n, cap));
    }

    // Cartesian product over nodes, capped, with structural dedup on the
    // ordered shape.
    let mut out: Vec<Document> = Vec::new();
    let mut seen: HashSet<Vec<u8>> = HashSet::new();
    let mut choice = vec![0usize; doc.len()];
    loop {
        let variant = rebuild(doc, root, &orderings, &choice);
        if seen.insert(ordered_key(&variant)) {
            out.push(variant);
            if out.len() >= cap {
                break;
            }
        }
        // advance the mixed-radix counter
        let mut i = 0;
        loop {
            if i == choice.len() {
                return out;
            }
            // PANIC-FREE: i < choice.len() == orderings.len()
            choice[i] += 1;
            // PANIC-FREE: same digit bound as the increment above
            if choice[i] < orderings[i].len() {
                break;
            }
            // PANIC-FREE: same digit bound as the increment above
            choice[i] = 0;
            i += 1;
        }
    }
    out
}

/// All child orderings of `n` obtained by permuting same-label groups,
/// bounded by `cap`.
fn child_orderings(doc: &Document, n: NodeId, cap: usize) -> Vec<Vec<NodeId>> {
    let kids = doc.children(n);
    // Group positions by label.
    let mut groups: Vec<Vec<usize>> = Vec::new();
    {
        let mut by_label: std::collections::HashMap<_, Vec<usize>> =
            std::collections::HashMap::new();
        for (i, &k) in kids.iter().enumerate() {
            by_label.entry(doc.sym(k).raw()).or_default().push(i);
        }
        let mut labels: Vec<_> = by_label.into_iter().collect();
        labels.sort_by_key(|(l, _)| *l);
        for (_, positions) in labels {
            if positions.len() > 1 {
                groups.push(positions);
            }
        }
    }
    if groups.is_empty() {
        return vec![kids.to_vec()];
    }

    let mut orders: Vec<Vec<NodeId>> = vec![kids.to_vec()];
    for group in groups {
        let mut next: Vec<Vec<NodeId>> = Vec::new();
        'outer: for base in &orders {
            // PANIC-FREE: group positions index kids, and every base is a
            // permutation of kids, so they stay in bounds
            let members: Vec<NodeId> = group.iter().map(|&i| base[i]).collect();
            for perm in permutations(&members, cap) {
                let mut v = base.clone();
                for (slot, node) in group.iter().zip(&perm) {
                    // PANIC-FREE: slots index kids; v permutes kids
                    v[*slot] = *node;
                }
                next.push(v);
                if next.len() >= cap {
                    break 'outer;
                }
            }
        }
        orders = next;
    }
    // Dedup orderings that are identical node-id lists.
    let mut seen = HashSet::new();
    orders.retain(|o| seen.insert(o.clone()));
    orders
}

/// All permutations of `items`, capped (Heap's algorithm, iteratively
/// bounded).
fn permutations(items: &[NodeId], cap: usize) -> Vec<Vec<NodeId>> {
    let mut out = Vec::new();
    let mut v = items.to_vec();
    permute(&mut v, 0, cap, &mut out);
    out
}

fn permute(v: &mut Vec<NodeId>, k: usize, cap: usize, out: &mut Vec<Vec<NodeId>>) {
    if out.len() >= cap {
        return;
    }
    if k == v.len() {
        out.push(v.clone());
        return;
    }
    for i in k..v.len() {
        v.swap(k, i);
        permute(v, k + 1, cap, out);
        v.swap(k, i);
    }
}

/// Rebuilds a document applying the chosen child ordering at every node.
fn rebuild(
    doc: &Document,
    root: NodeId,
    orderings: &[Vec<Vec<NodeId>>],
    choice: &[usize],
) -> Document {
    let mut out = Document::with_root(doc.sym(root));
    // PANIC-FREE: with_root seeds the arena with exactly one root node
    let new_root = out.root().expect("Document::with_root always has a root");
    let mut stack = vec![(root, new_root)];
    while let Some((old, new)) = stack.pop() {
        // PANIC-FREE: orderings/choice carry one entry per document node,
        // and the stack only holds this document's node ids
        let order = &orderings[old as usize][choice[old as usize]];
        for &c in order {
            let nc = out.child(new, doc.sym(c));
            stack.push((c, nc));
        }
    }
    out
}

/// Order-sensitive structural key (labels + child order).
fn ordered_key(doc: &Document) -> Vec<u8> {
    let mut out = Vec::with_capacity(doc.len() * 5);
    let Some(root) = doc.root() else {
        return out;
    };
    fn rec(doc: &Document, n: NodeId, out: &mut Vec<u8>) {
        out.extend_from_slice(&doc.sym(n).raw().to_le_bytes());
        out.push(b'(');
        for &c in doc.children(n) {
            rec(doc, c, out);
        }
        out.push(b')');
    }
    rec(doc, root, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use xseq_xml::SymbolTable;

    #[test]
    fn no_identical_siblings_one_variant() {
        let mut st = SymbolTable::default();
        let p = st.elem("P");
        let a = st.elem("A");
        let b = st.elem("B");
        let mut doc = Document::with_root(p);
        let r = doc.root().unwrap();
        doc.child(r, a);
        doc.child(r, b);
        let vars = isomorphic_variants(&doc, 100);
        assert_eq!(vars.len(), 1);
        assert!(vars[0].structurally_eq(&doc));
    }

    #[test]
    fn figure5_two_variants() {
        // P(L(S), L(B)): the two L subtrees differ, so both orders matter.
        let mut st = SymbolTable::default();
        let p = st.elem("P");
        let l = st.elem("L");
        let s = st.elem("S");
        let b = st.elem("B");
        let mut doc = Document::with_root(p);
        let r = doc.root().unwrap();
        let l1 = doc.child(r, l);
        doc.child(l1, s);
        let l2 = doc.child(r, l);
        doc.child(l2, b);
        let vars = isomorphic_variants(&doc, 100);
        assert_eq!(vars.len(), 2);
        for v in &vars {
            assert!(v.structurally_eq(&doc), "variants are isomorphic");
        }
        assert_ne!(ordered_key(&vars[0]), ordered_key(&vars[1]));
    }

    #[test]
    fn identical_subtrees_collapse() {
        // P(L, L): both orders are indistinguishable → one variant.
        let mut st = SymbolTable::default();
        let p = st.elem("P");
        let l = st.elem("L");
        let mut doc = Document::with_root(p);
        let r = doc.root().unwrap();
        doc.child(r, l);
        doc.child(r, l);
        let vars = isomorphic_variants(&doc, 100);
        assert_eq!(vars.len(), 1);
    }

    #[test]
    fn cap_limits_explosion() {
        // Root with 6 distinct-subtree identical siblings: 720 orderings.
        let mut st = SymbolTable::default();
        let p = st.elem("P");
        let l = st.elem("L");
        let mut doc = Document::with_root(p);
        let r = doc.root().unwrap();
        for i in 0..6 {
            let ln = doc.child(r, l);
            let leaf = st.elem(&format!("x{i}"));
            doc.child(ln, leaf);
        }
        let vars = isomorphic_variants(&doc, 16);
        assert_eq!(vars.len(), 16);
    }

    #[test]
    fn nested_groups_multiply() {
        // P(A(L(x),L(y)), A(L(u),L(w))) — permutations at several levels.
        let mut st = SymbolTable::default();
        let p = st.elem("P");
        let a = st.elem("A");
        let l = st.elem("L");
        let mut doc = Document::with_root(p);
        let r = doc.root().unwrap();
        for pair in [["x", "y"], ["u", "w"]] {
            let an = doc.child(r, a);
            for leaf in pair {
                let ln = doc.child(an, l);
                let lf = st.elem(leaf);
                doc.child(ln, lf);
            }
        }
        let vars = isomorphic_variants(&doc, 1000);
        // 2 (A order) × 2 (first A's Ls) × 2 (second A's Ls) = 8
        assert_eq!(vars.len(), 8);
        for v in &vars {
            assert!(v.structurally_eq(&doc));
        }
    }

    #[test]
    fn empty_document() {
        let vars = isomorphic_variants(&Document::new(), 10);
        assert_eq!(vars.len(), 1);
    }
}
