//! Sequence-level integrity checks: Eq. 3 (`f2`) validity and the Theorem 1
//! round-trip.
//!
//! The paper's correctness story rests on two properties of every stored
//! constraint sequence:
//!
//! 1. **`f2` validity (Eq. 3 / Definition 1)** — every element's proper
//!    prefixes occur in the sequence, there is exactly one root, and the
//!    forward-prefix attachment yields a tree whose node-encoding multiset
//!    equals the sequence's element multiset.
//! 2. **Unique decoding (Theorem 1)** — the sequence maps back to exactly
//!    one tree.  For strategies whose re-encoding is canonical
//!    (depth-first, probability-ordered — see
//!    [`Strategy::reencode_is_canonical`]) this is checked in its strongest
//!    form: decoding and re-sequencing with the same strategy must
//!    reproduce the sequence *identically*, element for element.
//!    `Random` (per-node ranks) and `BreadthFirst` (level order is not
//!    recoverable once the decoder normalizes equal-path sibling
//!    attachment) may legally re-encode differently; there the check falls
//!    back to structural equality of a double decode.
//!
//! An index that silently violates either property returns wrong answers —
//! not errors — so `xseq-index`'s [`verify_integrity`] runs these checks
//! over every distinct sequence stored in the trie.
//!
//! [`verify_integrity`]: ../xseq_index/struct.XmlIndex.html#method.verify_integrity

use crate::constraint::{decode_f2, DecodeError};
use crate::strategy::sequence_document;
use crate::{Sequence, Strategy};
use std::fmt;
use xseq_xml::{PathId, PathTable};

/// Why a stored sequence failed verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SequenceIssue {
    /// The sequence is not a valid `f2` constraint sequence (Eq. 3).
    NotF2(DecodeError),
    /// The decoded tree's node-encoding multiset differs from the
    /// sequence's element multiset (Definition 1's "one element per node"
    /// is broken).
    MultisetMismatch {
        /// A path present in one multiset but not the other.
        path: PathId,
    },
    /// Re-sequencing the decoded tree with the same strategy produced a
    /// different encoding — Theorem 1's unique decoding does not hold for
    /// this sequence as stored.
    ReencodeMismatch {
        /// First sequence position where the encodings differ (or the
        /// shorter length when one is a prefix of the other).
        position: usize,
    },
    /// For strategies without a canonical re-encoding: decode →
    /// re-sequence → decode produced a structurally different tree.
    StructuralMismatch,
}

impl fmt::Display for SequenceIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SequenceIssue::NotF2(e) => write!(f, "not a valid f2 sequence: {e}"),
            SequenceIssue::MultisetMismatch { path } => {
                write!(f, "element multiset mismatch at path {path:?}")
            }
            SequenceIssue::ReencodeMismatch { position } => {
                write!(f, "re-encoding diverges at position {position}")
            }
            SequenceIssue::StructuralMismatch => {
                write!(f, "double decode is not structurally equal")
            }
        }
    }
}

/// Verifies that `seq` is a well-formed `f2` constraint sequence that
/// round-trips through the Theorem 1 decoder under `strategy`.
///
/// Interns no new paths for well-formed input (every path a decoded tree
/// re-encodes to is already present); `paths` is `&mut` only because the
/// re-encoding step shares the strategy emitter's signature.
pub fn verify_sequence(
    seq: &Sequence,
    paths: &mut PathTable,
    strategy: &Strategy,
) -> Result<(), SequenceIssue> {
    // 1. Eq. 3: the sequence decodes under the forward-prefix constraint.
    let doc = decode_f2(seq, paths).map_err(SequenceIssue::NotF2)?;

    // 2. Definition 1: one element per tree node, as a multiset.
    let mut stored: Vec<PathId> = seq.elems().to_vec();
    let mut decoded: Vec<PathId> = doc.path_encode(paths);
    stored.sort_unstable();
    decoded.sort_unstable();
    if stored != decoded {
        let path = stored
            .iter()
            .zip(decoded.iter())
            .find(|(a, b)| a != b)
            .map(|(a, _)| *a)
            .or_else(|| stored.last().copied())
            .unwrap_or(PathId::ROOT);
        return Err(SequenceIssue::MultisetMismatch { path });
    }

    // 3. Theorem 1: the decoded tree re-encodes to the same sequence.
    let re = sequence_document(&doc, paths, strategy);
    if strategy.reencode_is_canonical() {
        if re != *seq {
            let position = re
                .elems()
                .iter()
                .zip(seq.elems())
                .position(|(a, b)| a != b)
                .unwrap_or_else(|| re.len().min(seq.len()));
            return Err(SequenceIssue::ReencodeMismatch { position });
        }
    } else {
        // Random's per-node ranks and BreadthFirst's original level order
        // are not preserved through decoding, so the re-encoding may
        // legally reorder; uniqueness is still required of the *tree*.
        let back = decode_f2(&re, paths).map_err(|_| SequenceIssue::StructuralMismatch)?;
        if !back.structurally_eq(&doc) {
            return Err(SequenceIssue::StructuralMismatch);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use xseq_xml::{Document, SymbolTable, ValueMode};

    fn fig3b(st: &mut SymbolTable) -> Document {
        let p = st.elem("P");
        let d = st.elem("D");
        let l = st.elem("L");
        let m = st.elem("M");
        let mut doc = Document::with_root(p);
        let root = doc.root().unwrap();
        let d1 = doc.child(root, d);
        doc.child(d1, l);
        let d2 = doc.child(root, d);
        doc.child(d2, m);
        doc
    }

    #[test]
    fn valid_sequences_pass_for_every_strategy() {
        let mut st = SymbolTable::with_value_mode(ValueMode::Intern);
        let doc = fig3b(&mut st);
        // fig3b has identical siblings, which breadth-first sequencing
        // excludes by precondition — it gets its own test below.
        for strategy in [
            Strategy::DepthFirst,
            Strategy::Random { seed: 3 },
            Strategy::Probability(crate::PriorityMap::new(0.0)),
        ] {
            let mut paths = PathTable::new();
            let seq = sequence_document(&doc, &mut paths, &strategy);
            assert_eq!(
                verify_sequence(&seq, &mut paths, &strategy),
                Ok(()),
                "{strategy:?}"
            );
        }
    }

    #[test]
    fn breadth_first_passes_on_sibling_distinct_trees() {
        let mut st = SymbolTable::with_value_mode(ValueMode::Intern);
        let p = st.elem("P");
        let d = st.elem("D");
        let l = st.elem("L");
        let m = st.elem("M");
        let mut doc = Document::with_root(p);
        let root = doc.root().unwrap();
        let d1 = doc.child(root, d);
        doc.child(d1, l);
        doc.child(d1, m);
        doc.child(root, l);
        let mut paths = PathTable::new();
        let seq = sequence_document(&doc, &mut paths, &Strategy::BreadthFirst);
        assert_eq!(
            verify_sequence(&seq, &mut paths, &Strategy::BreadthFirst),
            Ok(())
        );
    }

    #[test]
    fn corrupt_sequence_is_reported() {
        let mut st = SymbolTable::with_value_mode(ValueMode::Intern);
        let doc = fig3b(&mut st);
        let mut paths = PathTable::new();
        let strategy = Strategy::DepthFirst;
        let mut seq = sequence_document(&doc, &mut paths, &strategy);
        // Flip one designator: replace the first element (the root "P")
        // with a deep path — no root remains.
        seq.0[0] = *seq.0.last().unwrap();
        assert!(matches!(
            verify_sequence(&seq, &mut paths, &strategy),
            Err(SequenceIssue::NotF2(_))
        ));
    }

    #[test]
    fn non_canonical_order_fails_reencode() {
        // ⟨P, PB, PA⟩ is a valid f2 sequence of P(B, A), but canonical
        // depth-first emits children in symbol order — ⟨P, PA, PB⟩ — so a
        // stored sequence in the swapped order cannot have been produced by
        // the DF emitter, and the strict round-trip catches it.
        let mut st = SymbolTable::with_value_mode(ValueMode::Intern);
        let p = st.elem("P");
        let a = st.elem("A");
        let b = st.elem("B");
        let mut paths = PathTable::new();
        let pp = paths.intern(&[p]);
        let pb = paths.intern(&[p, b]);
        let pa = paths.intern(&[p, a]);
        let swapped = Sequence(vec![pp, pb, pa]);
        let res = verify_sequence(&swapped, &mut paths, &Strategy::DepthFirst);
        assert!(
            matches!(res, Err(SequenceIssue::ReencodeMismatch { .. })),
            "{res:?}"
        );
    }
}
