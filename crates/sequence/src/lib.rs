//! # xseq-sequence — constraint sequencing of tree structures
//!
//! The heart of the paper (Sections 2 and 5): turning a tree into a sequence
//! of path-encoded nodes such that the tree — and only that tree — can be
//! reconstructed, while leaving as much ordering freedom as possible for a
//! *performance-oriented* user strategy.
//!
//! * [`Sequence`] — a sequence of [`PathId`]s, the unit the index ingests.
//! * [`constraint`] — the constraints `f1` (plain prefix, Eq. 2) and `f2`
//!   (forward prefix, Eq. 3 / Definition 2), sequence validation, and the
//!   Theorem 1 decoder that reconstructs the unique tree of a constraint
//!   sequence.
//! * [`strategy`] — sequencing strategies: depth-first, breadth-first,
//!   random, and the probability-ordered `g_best` of Algorithm 2, all run
//!   through a single constraint-respecting emitter.
//! * [`prufer`] — Prüfer codes, the alternative "ad hoc" encoding the paper
//!   discusses (and PRIX builds on), for comparison.
//! * [`isomorph`] — enumeration of the isomorphic sibling orderings of a
//!   query tree, the paper's cure for false dismissals (Section 3.3).
//! * [`verify`] — integrity checking of stored sequences: `f2` validity and
//!   the Theorem 1 round-trip, used by the index's `verify_integrity`.

#![forbid(unsafe_code)]

pub mod constraint;
pub mod isomorph;
pub mod prufer;
pub mod strategy;
pub mod verify;

pub use constraint::{decode_f2, forward_prefix, validate_f2, DecodeError};
pub use isomorph::isomorphic_variants;
pub use prufer::{prufer_decode, prufer_encode, PruferError};
pub use strategy::{
    sequence_document, sequence_nodes, sequence_nodes_readonly, PriorityMap, Strategy,
};
pub use verify::{verify_sequence, SequenceIssue};

use xseq_xml::{PathId, PathTable, SymbolTable};

/// A sequence of path-encoded nodes representing one tree structure.
///
/// Element `i` is the path encoding of one tree node; the multiset of
/// elements is exactly the multiset of node encodings of the tree, and the
/// order satisfies the active constraint.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Sequence(pub Vec<PathId>);

impl Sequence {
    /// Number of elements (= number of tree nodes).
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True for the empty sequence (the empty tree).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The elements in order.
    pub fn elems(&self) -> &[PathId] {
        &self.0
    }

    /// Renders the sequence in the paper's `⟨P, PD, PDL, …⟩` notation.
    pub fn render(&self, paths: &PathTable, symbols: &SymbolTable) -> String {
        let mut out = String::from("⟨");
        for (i, &p) in self.0.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            for sym in paths.symbols(p) {
                out.push_str(&symbols.render(sym));
            }
        }
        out.push('⟩');
        out
    }
}

impl From<Vec<PathId>> for Sequence {
    fn from(v: Vec<PathId>) -> Self {
        Sequence(v)
    }
}

/// Heap attribution for a sequence: its path vector.
impl xseq_telemetry::HeapSize for Sequence {
    fn heap_bytes(&self) -> usize {
        self.0.capacity() * std::mem::size_of::<PathId>()
    }
}

impl std::ops::Index<usize> for Sequence {
    type Output = PathId;
    fn index(&self, i: usize) -> &PathId {
        &self.0[i]
    }
}
