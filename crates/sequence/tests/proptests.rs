//! Property tests for constraint sequencing: Theorem 1 (unique decoding)
//! must hold for every tree and every strategy.

use proptest::prelude::*;
use xseq_sequence::{
    constraint::f1_applicable, decode_f2, isomorphic_variants, prufer_decode, prufer_encode,
    sequence_document, validate_f2, PriorityMap, Strategy as SeqStrategy,
};
use xseq_xml::{Document, PathTable, SymbolTable, ValueMode};

/// A compact recipe for a random tree: for node `i` (1-based), attach under
/// node `parent[i] % i` with label `label[i] % alphabet`.
#[derive(Debug, Clone)]
struct TreeRecipe {
    parents: Vec<u32>,
    labels: Vec<u8>,
    alphabet: u8,
}

fn tree_recipe(max_nodes: usize, max_alpha: u8) -> impl Strategy<Value = TreeRecipe> {
    (1..max_nodes, 1..max_alpha).prop_flat_map(|(n, alpha)| {
        (
            proptest::collection::vec(any::<u32>(), n),
            proptest::collection::vec(any::<u8>(), n + 1),
        )
            .prop_map(move |(parents, labels)| TreeRecipe {
                parents,
                labels,
                alphabet: alpha,
            })
    })
}

fn build(recipe: &TreeRecipe, st: &mut SymbolTable) -> Document {
    let syms: Vec<_> = (0..recipe.alphabet)
        .map(|i| st.elem(&format!("e{i}")))
        .collect();
    let lab = |i: usize| syms[(recipe.labels[i] % recipe.alphabet) as usize];
    let mut doc = Document::with_root(lab(0));
    for i in 1..=recipe.parents.len() {
        let parent = recipe.parents[i - 1] % i as u32;
        doc.child(parent, lab(i));
    }
    doc
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn roundtrip_depth_first(recipe in tree_recipe(40, 5)) {
        let mut st = SymbolTable::with_value_mode(ValueMode::Intern);
        let doc = build(&recipe, &mut st);
        let mut paths = PathTable::new();
        let seq = sequence_document(&doc, &mut paths, &SeqStrategy::DepthFirst);
        prop_assert_eq!(seq.len(), doc.len());
        prop_assert!(validate_f2(&seq, &mut paths).is_ok());
        let back = decode_f2(&seq, &paths).unwrap();
        prop_assert!(back.structurally_eq(&doc));
    }

    #[test]
    fn roundtrip_random_strategy(recipe in tree_recipe(40, 5), seed in any::<u64>()) {
        let mut st = SymbolTable::with_value_mode(ValueMode::Intern);
        let doc = build(&recipe, &mut st);
        let mut paths = PathTable::new();
        let seq = sequence_document(&doc, &mut paths, &SeqStrategy::Random { seed });
        prop_assert!(validate_f2(&seq, &mut paths).is_ok());
        let back = decode_f2(&seq, &paths).unwrap();
        prop_assert!(back.structurally_eq(&doc));
    }

    #[test]
    fn roundtrip_probability_strategy(recipe in tree_recipe(40, 5), pris in proptest::collection::vec(0.0f64..1.0, 64)) {
        let mut st = SymbolTable::with_value_mode(ValueMode::Intern);
        let doc = build(&recipe, &mut st);
        let mut paths = PathTable::new();
        // priorities keyed by path — derive from a random table
        let enc = doc.path_encode(&mut paths);
        let mut pm = PriorityMap::new(0.0);
        for &p in &enc {
            pm.insert(p, pris[(p.0 as usize) % pris.len()]);
        }
        let seq = sequence_document(&doc, &mut paths, &SeqStrategy::Probability(pm));
        prop_assert!(validate_f2(&seq, &mut paths).is_ok());
        let back = decode_f2(&seq, &paths).unwrap();
        prop_assert!(back.structurally_eq(&doc));
    }

    #[test]
    fn f1_applicable_iff_no_duplicate_paths(recipe in tree_recipe(30, 4)) {
        let mut st = SymbolTable::with_value_mode(ValueMode::Intern);
        let doc = build(&recipe, &mut st);
        let mut paths = PathTable::new();
        let seq = sequence_document(&doc, &mut paths, &SeqStrategy::DepthFirst);
        let mut sorted: Vec<_> = seq.elems().to_vec();
        sorted.sort();
        let has_dup = sorted.windows(2).any(|w| w[0] == w[1]);
        prop_assert_eq!(f1_applicable(&seq), !has_dup);
    }

    #[test]
    fn prufer_roundtrip(recipe in tree_recipe(40, 3)) {
        let mut st = SymbolTable::with_value_mode(ValueMode::Intern);
        let doc = build(&recipe, &mut st);
        let labels: Vec<u64> = (0..doc.len() as u64).map(|i| i * 7 + 3).collect();
        let seq = prufer_encode(&doc, &labels).unwrap();
        let mut universe = labels.clone();
        universe.sort();
        let edges = prufer_decode(&seq, &universe).unwrap();
        let mut expect: Vec<(u64, u64)> = doc
            .node_ids()
            .filter_map(|c| doc.parent(c).map(|p| (labels[c as usize], labels[p as usize])))
            .collect();
        expect.sort();
        let mut got = edges;
        got.sort();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn isomorphic_variants_are_isomorphic(recipe in tree_recipe(14, 3)) {
        let mut st = SymbolTable::with_value_mode(ValueMode::Intern);
        let doc = build(&recipe, &mut st);
        let vars = isomorphic_variants(&doc, 32);
        prop_assert!(!vars.is_empty());
        // every variant is structurally the same tree, and they all decode
        // back to it
        let mut paths = PathTable::new();
        for v in &vars {
            prop_assert!(v.structurally_eq(&doc));
            let s = sequence_document(v, &mut paths, &SeqStrategy::DepthFirst);
            let back = decode_f2(&s, &paths).unwrap();
            prop_assert!(back.structurally_eq(&doc));
        }
        // the original ordering is always among the variants
        let s0 = sequence_document(&doc, &mut paths, &SeqStrategy::DepthFirst);
        let found = vars.iter().any(|v| {
            sequence_document(v, &mut paths, &SeqStrategy::DepthFirst).0 == s0.0
        });
        prop_assert!(found, "original ordering must be covered");
    }

    #[test]
    fn sequences_of_same_doc_decode_identically(recipe in tree_recipe(25, 4), s1 in any::<u64>(), s2 in any::<u64>()) {
        // Many-to-one: different valid sequences of one tree decode to the
        // same structure (the crux of constraint sequencing).
        let mut st = SymbolTable::with_value_mode(ValueMode::Intern);
        let doc = build(&recipe, &mut st);
        let mut paths = PathTable::new();
        let a = sequence_document(&doc, &mut paths, &SeqStrategy::Random { seed: s1 });
        let b = sequence_document(&doc, &mut paths, &SeqStrategy::Random { seed: s2 });
        let da = decode_f2(&a, &paths).unwrap();
        let db = decode_f2(&b, &paths).unwrap();
        prop_assert!(da.structurally_eq(&db));
    }
}
