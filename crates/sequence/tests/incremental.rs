//! Incremental encoding: the update path (delta inserts, DESIGN.md §11)
//! sequences one document at a time against a path table that already holds
//! the frozen build's encodings.  These tests pin the properties that make
//! that sound:
//!
//! * **Path reuse** — re-encoding a document whose paths are all known
//!   interns nothing: the table length is unchanged and the sequence is
//!   identical to the build-time one, so a delta sequence is comparable
//!   with frozen sequences element for element.
//! * **Append-only growth** — a genuinely new document only appends path
//!   ids; existing ids never shift, so frozen trie labels and path links
//!   stay valid while the delta grows beside them.
//! * **Order independence of the increment** — encoding documents one by
//!   one (build + later inserts) produces the same sequences and the same
//!   final table as encoding them all in one batch.

use xseq_sequence::{sequence_document, Strategy};
use xseq_xml::{parse_document, Document, PathTable, SymbolTable, ValueMode};

fn parse_all(xmls: &[&str]) -> (SymbolTable, Vec<Document>) {
    let mut st = SymbolTable::with_value_mode(ValueMode::Intern);
    let docs = xmls
        .iter()
        .map(|x| parse_document(x, &mut st).expect("valid test xml"))
        .collect();
    (st, docs)
}

#[test]
fn re_encoding_a_known_document_interns_nothing() {
    let (_, docs) = parse_all(&["<p><r><l>boston</l></r></p>", "<p><d><l>ny</l></d></p>"]);
    let mut paths = PathTable::new();
    let first: Vec<_> = docs
        .iter()
        .map(|d| sequence_document(d, &mut paths, &Strategy::DepthFirst))
        .collect();
    let len_after_build = paths.len();
    for (doc, built) in docs.iter().zip(&first) {
        let again = sequence_document(doc, &mut paths, &Strategy::DepthFirst);
        assert_eq!(again.elems(), built.elems(), "identical re-encoding");
        assert_eq!(paths.len(), len_after_build, "no new paths interned");
    }
}

#[test]
fn incremental_encoding_only_appends_paths() {
    let (_, docs) = parse_all(&[
        "<p><r><l>boston</l></r></p>",
        "<p><r><l>boston</l></r><z><q/></z></p>",
    ]);
    let mut paths = PathTable::new();
    let base = sequence_document(&docs[0], &mut paths, &Strategy::DepthFirst);
    let len_before = paths.len();
    // The second document shares a prefix of paths and adds new ones.
    let grown = sequence_document(&docs[1], &mut paths, &Strategy::DepthFirst);
    assert!(paths.len() > len_before, "new paths appended");
    // Shared paths kept their ids: the first document's encoding is a
    // subsequence-compatible prefix view, bit-for-bit.
    let again = sequence_document(&docs[0], &mut paths, &Strategy::DepthFirst);
    assert_eq!(again.elems(), base.elems(), "existing ids never shift");
    assert!(
        grown.elems().iter().any(|p| base.elems().contains(p)),
        "shared structure reuses the same path ids"
    );
}

#[test]
fn one_by_one_equals_batch_encoding() {
    let xmls = [
        "<p><r><l>boston</l></r></p>",
        "<p><d><l>ny</l></d></p>",
        "<p><r><l>austin</l></r><d/></p>",
        "<q><x><y/></x></q>",
    ];
    for strategy in [Strategy::DepthFirst, Strategy::Random { seed: 7 }] {
        let (_, docs) = parse_all(&xmls);
        // Batch: every document against one growing table.
        let mut batch_paths = PathTable::new();
        let batch: Vec<_> = docs
            .iter()
            .map(|d| sequence_document(d, &mut batch_paths, &strategy))
            .collect();
        // Incremental: "build" the first two, then "insert" the rest later.
        let (_, docs2) = parse_all(&xmls);
        let mut inc_paths = PathTable::new();
        let mut inc = Vec::new();
        for d in &docs2[..2] {
            inc.push(sequence_document(d, &mut inc_paths, &strategy));
        }
        for d in &docs2[2..] {
            inc.push(sequence_document(d, &mut inc_paths, &strategy));
        }
        assert_eq!(
            inc_paths.len(),
            batch_paths.len(),
            "{strategy:?}: tables agree"
        );
        for (a, b) in batch.iter().zip(&inc) {
            assert_eq!(a.elems(), b.elems(), "{strategy:?}: sequences agree");
        }
    }
}
