//! Interleaving model checks for the exec pool's chunked work queue,
//! using the `xseq-telemetry::sched` harness that validated `BoundedRing`.
//!
//! N logical workers each run a script of `claim` ops; every interleaving
//! (or a seeded sample of a too-large space) replays against a reference
//! allocator — a plain sequential cursor.  The properties under test are
//! the ones the pool's determinism contract rests on:
//!
//! * claims are handed out in ascending range order regardless of which
//!   worker arrives when;
//! * the issued ranges are disjoint and cover `0..len` exactly once;
//! * a worker that claims after exhaustion gets `None`, forever;
//! * the `Pool::run` slot discipline (take-the-task, store-the-result)
//!   never observes an already-taken slot.

use xseq_exec::ChunkQueue;
use xseq_telemetry::sched::Schedules;

/// Replays `claims_per_thread[t]` claim ops per worker over every
/// interleaving, checking the real [`ChunkQueue`] against a reference
/// cursor allocator of the given `model_chunk`.  `model_chunk` equal to
/// the real chunk size must pass; a different one must diverge (the
/// checker's self-test uses that).
fn check_chunk_queue_model(
    claims_per_thread: &[usize],
    len: usize,
    chunk: usize,
    model_chunk: usize,
    limit: usize,
    seed: u64,
) -> Result<usize, String> {
    let schedules = Schedules::new(claims_per_thread, limit, seed);
    let mut failure: Option<String> = None;
    let visited = schedules.for_each(|sched| {
        if failure.is_some() {
            return;
        }
        if let Err(e) = run_schedule(claims_per_thread, len, chunk, model_chunk, sched) {
            failure = Some(format!("{e} (schedule {sched:?})"));
        }
    });
    match failure {
        Some(e) => Err(e),
        None => Ok(visited),
    }
}

fn run_schedule(
    claims_per_thread: &[usize],
    len: usize,
    chunk: usize,
    model_chunk: usize,
    sched: &[usize],
) -> Result<(), String> {
    let queue = ChunkQueue::new(len, chunk);
    let model_chunk = model_chunk.max(1);
    let mut model_cursor = 0usize;
    let mut cursor = vec![0usize; claims_per_thread.len()];
    // One result slot per item, mirroring Pool::run's task slots: a claim
    // "takes" every index in its range; taking a taken slot is the bug.
    let mut taken = vec![false; len];
    let mut covered = Vec::new();
    for (step, &t) in sched.iter().enumerate() {
        cursor[t] += 1;
        let real = queue.claim();
        let expect = if model_cursor >= len {
            None
        } else {
            let end = (model_cursor + model_chunk).min(len);
            let r = (model_cursor, end);
            model_cursor = end;
            Some(r)
        };
        if real != expect {
            return Err(format!(
                "step {step} (worker {t}): claim gave {real:?}, model expected {expect:?}"
            ));
        }
        if let Some((start, end)) = real {
            covered.push((start, end));
            for slot in &mut taken[start..end] {
                if *slot {
                    return Err(format!(
                        "step {step}: range {start}..{end} re-takes an already-taken slot"
                    ));
                }
                *slot = true;
            }
        }
    }
    // If the scripts performed enough claims to drain the queue, coverage
    // must be total and in ascending order.
    let total_claims: usize = claims_per_thread.iter().sum();
    if total_claims >= len.div_ceil(chunk.max(1)) {
        if !taken.iter().all(|&t| t) {
            return Err(format!("drained queue left unclaimed items: {taken:?}"));
        }
        if !covered.windows(2).all(|w| w[0].1 == w[1].0) {
            return Err(format!("claims not issued in ascending order: {covered:?}"));
        }
    }
    Ok(())
}

#[test]
fn exhaustive_small_space_is_clean() {
    // 3 workers x 3 claims over 6 items chunked by 2: 1680 interleavings,
    // enumerated exhaustively.
    let schedules = Schedules::new(&[3, 3, 3], 2000, 0);
    assert!(schedules.is_exhaustive());
    let visited = check_chunk_queue_model(&[3, 3, 3], 6, 2, 2, 2000, 0)
        .expect("chunk queue diverged from the reference allocator");
    assert_eq!(visited, 1680);
}

#[test]
fn uneven_tail_chunk_is_clean() {
    // 10 items chunked by 3 leaves a 1-item tail chunk; workers claim
    // more than the queue holds, exercising post-exhaustion Nones.
    let visited = check_chunk_queue_model(&[3, 3], 10, 3, 3, 100, 0)
        .expect("tail chunk diverged from the reference allocator");
    assert_eq!(visited, 20, "C(6,3) interleavings");
}

#[test]
fn single_item_chunks_match_task_claiming() {
    // chunk=1 is exactly Pool::run's task claiming; every slot is taken
    // exactly once under every arrival order.
    check_chunk_queue_model(&[4, 4], 5, 1, 1, 200, 0)
        .expect("task claiming diverged from the reference allocator");
}

#[test]
fn oversized_space_runs_a_seeded_sample() {
    let schedules = Schedules::new(&[8, 8, 8, 8], 500, 42);
    assert!(!schedules.is_exhaustive());
    let visited = check_chunk_queue_model(&[8, 8, 8, 8], 24, 2, 2, 500, 42)
        .expect("sampled schedules diverged from the reference allocator");
    assert_eq!(visited, 500);
}

#[test]
fn checker_detects_a_wrong_model() {
    // Self-test: a reference allocator with the wrong chunk size must
    // diverge, proving the harness can fail at all.
    let err = check_chunk_queue_model(&[2, 2], 8, 2, 3, 100, 0)
        .expect_err("mismatched model chunk sizes must diverge");
    assert!(err.contains("model expected"), "unexpected failure: {err}");
}

#[test]
fn empty_queue_yields_none_under_every_schedule() {
    check_chunk_queue_model(&[2, 2], 0, 4, 4, 100, 0)
        .expect("empty queue must return None to every claim");
}
