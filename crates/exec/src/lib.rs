//! `xseq-exec` — the workspace's only home for threads.
//!
//! A dependency-free scoped worker pool built from two pieces:
//!
//! * [`ChunkQueue`] — a wait-free claim counter handing out disjoint
//!   `[start, end)` ranges of a work list.  Dynamic chunk claiming gives
//!   load balancing (a worker that draws a cheap chunk immediately claims
//!   another) while keeping results addressable by chunk index, so callers
//!   can reassemble outputs in *input* order no matter which worker ran
//!   which chunk.  The queue's op-level state machine is model-checked
//!   against a reference allocator with the `xseq-telemetry::sched`
//!   interleaving checker (see `tests/sched.rs`), the same harness that
//!   validated `BoundedRing`.
//! * [`Pool`] — a scope/join front end over `std::thread::scope`.  Every
//!   entry point blocks until all spawned work is joined, so borrowed data
//!   flows into workers without `'static` bounds and panics propagate to
//!   the caller.  A pool of one thread (the default) degenerates to plain
//!   in-place iteration with zero thread or lock traffic.
//!
//! Determinism contract: [`Pool::map`], [`Pool::map_chunks`] and
//! [`Pool::run`] return results in input order, independent of thread
//! count and scheduling.  Parallel index construction relies on this — the
//! merge of per-worker interning deltas happens in chunk order, which is
//! document order.
//!
//! The crate also hosts [`Ticker`], the periodic driver behind the
//! telemetry crate's clock-free watchdog and metrics journal: those are
//! pure `tick()` state machines, and the one place allowed to own the
//! background thread that calls them on a cadence is here.
//!
//! The `cargo xtask lint` rule `no-thread-spawn` forbids `thread::spawn`
//! outside this crate: everything else goes through the pool.
#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// A wait-free chunk allocator over the index range `0..len`.
///
/// Each [`ChunkQueue::claim`] hands out the next untouched `[start, end)`
/// range of at most `chunk` items; ranges are disjoint, in ascending
/// order of issue, and together cover the whole range exactly once.
/// `start` is always a multiple of `chunk`, so `start / chunk` is a dense
/// chunk index usable as a result slot.
#[derive(Debug)]
pub struct ChunkQueue {
    cursor: AtomicUsize,
    len: usize,
    chunk: usize,
}

impl ChunkQueue {
    /// A queue over `len` items handed out `chunk` at a time (`chunk` is
    /// clamped to at least 1).
    pub fn new(len: usize, chunk: usize) -> Self {
        ChunkQueue {
            cursor: AtomicUsize::new(0),
            len,
            chunk: chunk.max(1),
        }
    }

    /// Claims the next chunk, or `None` when the range is exhausted.
    ///
    /// Safe to call from any number of threads; each index in `0..len` is
    /// handed out exactly once.  Callers are expected to stop on the first
    /// `None` (the pool's workers do), which bounds the cursor overshoot
    /// to one claim per caller.
    pub fn claim(&self) -> Option<(usize, usize)> {
        // ORDERING: cursor — the fetch_add RMW is the whole synchronization
        // story; it alone makes claims disjoint.  Results computed from a claim
        // travel back to the caller through the scope join (a full
        // happens-before edge), never through this counter.
        let start = self.cursor.fetch_add(self.chunk, Ordering::Relaxed);
        if start >= self.len {
            return None;
        }
        Some((start, (start + self.chunk).min(self.len)))
    }

    /// Total number of items governed by the queue.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the queue governs no items (every claim returns `None`).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The configured chunk size.
    pub fn chunk_size(&self) -> usize {
        self.chunk
    }

    /// Number of chunks a full drain hands out.
    pub fn chunk_count(&self) -> usize {
        self.len.div_ceil(self.chunk)
    }
}

/// A scoped worker pool of a fixed thread count.
///
/// The pool holds no OS resources between calls — threads are spawned
/// inside each entry point's scope and joined before it returns, so a
/// `Pool` is trivially `Send + Sync` and cheap to store or clone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool {
    threads: usize,
}

impl Default for Pool {
    /// A sequential pool (one thread, no spawning).
    fn default() -> Self {
        Pool::new(1)
    }
}

impl Pool {
    /// A pool of `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        Pool {
            threads: threads.max(1),
        }
    }

    /// The worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// True when the pool executes in place on the calling thread.
    pub fn is_sequential(&self) -> bool {
        self.threads == 1
    }

    /// The default chunk size for `len` items: roughly four chunks per
    /// worker, so a straggler chunk costs at most ~1/4 of one worker's
    /// share of the wall clock.
    pub fn chunk_for(&self, len: usize) -> usize {
        len.div_ceil(self.threads * 4).max(1)
    }

    /// Applies `f` to every item, returning results in input order.
    ///
    /// `f` receives the item's index alongside the item.  Work is claimed
    /// in chunks of [`Pool::chunk_for`] via a [`ChunkQueue`].
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let chunk = self.chunk_for(items.len());
        let per_chunk = self.map_chunks(items, chunk, |ci, slice| {
            let base = ci * chunk;
            slice
                .iter()
                .enumerate()
                .map(|(j, item)| f(base + j, item))
                .collect::<Vec<R>>()
        });
        per_chunk.into_iter().flatten().collect()
    }

    /// Applies `f` to contiguous chunks of `items` (at most `chunk` items
    /// each), returning one result per chunk in chunk order.
    ///
    /// `f` receives the dense chunk index (`0..len.div_ceil(chunk)`) and
    /// the chunk slice.  This is the primitive behind parallel ingest:
    /// chunk order *is* document order, so merging per-chunk interning
    /// deltas in result order replays the sequential first-occurrence
    /// order exactly.
    pub fn map_chunks<T, R, F>(&self, items: &[T], chunk: usize, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &[T]) -> R + Sync,
    {
        let chunk = chunk.max(1);
        if items.is_empty() {
            return Vec::new();
        }
        let n_chunks = items.len().div_ceil(chunk);
        if self.threads == 1 || n_chunks == 1 {
            return items
                .chunks(chunk)
                .enumerate()
                .map(|(ci, slice)| f(ci, slice))
                .collect();
        }
        let queue = ChunkQueue::new(items.len(), chunk);
        let slots: Vec<Mutex<Option<R>>> = (0..n_chunks).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|s| {
            for _ in 0..self.threads.min(n_chunks) {
                s.spawn(|| {
                    while let Some((start, end)) = queue.claim() {
                        // PANIC-FREE: chunk >= 1 (clamped at entry)
                        let ci = start / chunk;
                        // PANIC-FREE: claim() returns start < len, end <= len
                        let result = f(ci, &items[start..end]);
                        // PANIC-FREE: ci < n_chunks since start < len; the
                        // lock only poisons if f panicked (already unwinding)
                        *slots[ci].lock().expect("chunk result lock poisoned") = Some(result);
                    }
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                // PANIC-FREE: the scope joined every worker, so each slot
                // was filled exactly once and its lock cannot be poisoned
                slot.into_inner()
                    .expect("chunk result lock poisoned")
                    // PANIC-FREE: every chunk index was claimed and stored
                    .expect("chunk queue hands every chunk to exactly one worker")
            })
            .collect()
    }

    /// Runs every task on the pool, returning results in task order — the
    /// scope/join API.  Tasks are claimed one at a time (heterogeneous
    /// tasks balance better unchunked); the call joins all workers before
    /// returning, so tasks may borrow from the caller's stack.
    pub fn run<T, F>(&self, tasks: Vec<F>) -> Vec<T>
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        let n = tasks.len();
        if n == 0 {
            return Vec::new();
        }
        if self.threads == 1 || n == 1 {
            return tasks.into_iter().map(|task| task()).collect();
        }
        let queue = ChunkQueue::new(n, 1);
        let task_slots: Vec<Mutex<Option<F>>> =
            tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
        let out_slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|s| {
            for _ in 0..self.threads.min(n) {
                s.spawn(|| {
                    while let Some((i, _)) = queue.claim() {
                        // PANIC-FREE: claim() yields indices below n and
                        // task_slots has exactly n entries
                        let slot = task_slots[i].lock();
                        // PANIC-FREE: slot mutexes are leaf locks no task
                        // holds while running, so they cannot be poisoned
                        let task = slot
                            .expect("task slot lock poisoned")
                            .take()
                            // PANIC-FREE: the queue hands index i out once
                            .expect("chunk queue hands every task index out once");
                        // PANIC-FREE: same n-entry bound and leaf-lock
                        // argument as the task slot above
                        *out_slots[i].lock().expect("result slot lock poisoned") = Some(task());
                    }
                });
            }
        });
        out_slots
            .into_iter()
            .map(|slot| {
                // PANIC-FREE: the scope joined every worker, so each slot
                // was filled exactly once and its lock cannot be poisoned
                slot.into_inner()
                    .expect("result slot lock poisoned")
                    // PANIC-FREE: every claimed index stored before join
                    .expect("every claimed task stores its result before the join")
            })
            .collect()
    }
}

/// A background thread invoking a callback once per period until stopped.
///
/// This is the cadence source for the telemetry crate's tick-driven
/// components (watchdog, metrics journal): they stay deterministic and
/// thread-free, and a `Ticker` turns their `tick()` into wall-clock
/// behaviour.  The callback runs once immediately on spawn, then once per
/// period.  Stopping (explicitly or on drop) joins the thread, so the
/// callback never outlives the `Ticker`.
#[derive(Debug)]
pub struct Ticker {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Ticker {
    /// Spawns a thread running `f` now and then every `period` until
    /// [`Ticker::stop`] or drop.  The period is polled in small slices so
    /// stopping takes milliseconds even with long periods.
    pub fn spawn<F>(period: Duration, f: F) -> Ticker
    where
        F: FnMut() + Send + 'static,
    {
        Self::spawn_named("xseq-ticker", period, f)
    }

    /// [`Ticker::spawn`] with an OS thread name — background workers (the
    /// merge scheduler, the metrics journal) show up under their own names
    /// in `ps`/debuggers instead of an anonymous thread id.
    pub fn spawn_named<F>(name: &str, period: Duration, mut f: F) -> Ticker
    where
        F: FnMut() + Send + 'static,
    {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name(name.to_owned())
            .spawn(move || {
                loop {
                    // ORDERING: latch — standalone shutdown flag; the join
                    // below is the only ordering anyone relies on.
                    if stop_flag.load(Ordering::Relaxed) {
                        return;
                    }
                    f();
                    let mut remaining = period;
                    while remaining > Duration::ZERO {
                        // ORDERING: latch — same standalone shutdown flag as above
                        if stop_flag.load(Ordering::Relaxed) {
                            return;
                        }
                        let slice = remaining.min(Duration::from_millis(5));
                        std::thread::sleep(slice);
                        remaining = remaining.saturating_sub(slice);
                    }
                }
            });
        let handle = match handle {
            Ok(h) => Some(h),
            // OS refused a thread: degrade to a dead ticker (no cadence)
            // rather than poisoning startup — callers drive ticks at their
            // own risk of staleness, and stop()/drop stay no-ops.
            Err(_) => None,
        };
        Ticker { stop, handle }
    }

    /// Signals the thread to stop and joins it.  Idempotent; also runs on
    /// drop.
    pub fn stop(&mut self) {
        // ORDERING: latch — the join right after provides the happens-before edge
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Ticker {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn chunk_queue_partitions_the_range() {
        let q = ChunkQueue::new(10, 3);
        assert_eq!(q.chunk_count(), 4);
        let mut got = Vec::new();
        while let Some(r) = q.claim() {
            got.push(r);
        }
        assert_eq!(got, vec![(0, 3), (3, 6), (6, 9), (9, 10)]);
        assert_eq!(q.claim(), None, "exhausted queues stay exhausted");
    }

    #[test]
    fn chunk_queue_clamps_chunk_to_one() {
        let q = ChunkQueue::new(2, 0);
        assert_eq!(q.chunk_size(), 1);
        assert_eq!(q.claim(), Some((0, 1)));
        assert_eq!(q.claim(), Some((1, 2)));
        assert_eq!(q.claim(), None);
    }

    #[test]
    fn empty_queue_yields_nothing() {
        let q = ChunkQueue::new(0, 4);
        assert!(q.is_empty());
        assert_eq!(q.claim(), None);
    }

    #[test]
    fn map_preserves_input_order_at_every_thread_count() {
        let items: Vec<u32> = (0..103).collect();
        let expect: Vec<u64> = items.iter().map(|&x| u64::from(x) * 3 + 1).collect();
        for threads in [1, 2, 3, 4, 8] {
            let pool = Pool::new(threads);
            let got = pool.map(&items, |i, &x| {
                assert_eq!(i as u32, x, "index argument matches position");
                u64::from(x) * 3 + 1
            });
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn map_chunks_sees_contiguous_slices_in_order() {
        let items: Vec<usize> = (0..25).collect();
        let pool = Pool::new(4);
        let spans = pool.map_chunks(&items, 7, |ci, slice| (ci, slice[0], slice.len()));
        assert_eq!(spans, vec![(0, 0, 7), (1, 7, 7), (2, 14, 7), (3, 21, 4)]);
    }

    #[test]
    fn run_joins_all_tasks_in_task_order() {
        let started = AtomicUsize::new(0);
        let tasks: Vec<_> = (0..17usize)
            .map(|i| {
                let started = &started;
                move || {
                    // relaxed: test-only liveness counter
                    started.fetch_add(1, Ordering::Relaxed);
                    i * i
                }
            })
            .collect();
        let got = Pool::new(4).run(tasks);
        assert_eq!(got, (0..17usize).map(|i| i * i).collect::<Vec<_>>());
        // relaxed: read after the scope join, fully ordered by it
        assert_eq!(started.load(Ordering::Relaxed), 17);
    }

    #[test]
    fn every_item_is_processed_exactly_once() {
        let pool = Pool::new(8);
        let items: Vec<usize> = (0..1000).collect();
        let seen: Vec<usize> = pool.map(&items, |_, &x| x);
        let unique: HashSet<usize> = seen.iter().copied().collect();
        assert_eq!(unique.len(), 1000);
    }

    #[test]
    fn sequential_pool_never_spawns() {
        // Nothing observable to assert beyond behavior: the threads==1
        // paths return before any scope is created.
        let pool = Pool::default();
        assert!(pool.is_sequential());
        assert_eq!(pool.map(&[1, 2, 3], |_, &x| x + 1), vec![2, 3, 4]);
        assert_eq!(pool.run(vec![|| 5]), vec![5]);
    }

    #[test]
    fn ticker_fires_and_stops_cleanly() {
        let fired = Arc::new(AtomicUsize::new(0));
        let seen = Arc::clone(&fired);
        let mut ticker = Ticker::spawn(Duration::from_millis(1), move || {
            // relaxed: test-only liveness counter
            seen.fetch_add(1, Ordering::Relaxed);
        });
        // the first invocation is immediate; wait for at least one more
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        // relaxed: test-only liveness counter
        while fired.load(Ordering::Relaxed) < 2 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        ticker.stop();
        // relaxed: read after the join inside stop()
        let at_stop = fired.load(Ordering::Relaxed);
        assert!(at_stop >= 2, "ticker fired {at_stop} time(s)");
        std::thread::sleep(Duration::from_millis(10));
        // relaxed: no concurrent writer remains after the join
        assert_eq!(fired.load(Ordering::Relaxed), at_stop, "fired after stop");
        ticker.stop(); // idempotent
    }

    #[test]
    fn chunk_for_balances_roughly_four_per_worker() {
        let pool = Pool::new(4);
        assert_eq!(pool.chunk_for(0), 1);
        assert_eq!(pool.chunk_for(16), 1);
        assert_eq!(pool.chunk_for(160), 10);
        let sequential = Pool::new(1);
        assert_eq!(sequential.chunk_for(100), 25);
    }
}
