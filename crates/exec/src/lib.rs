//! `xseq-exec` — the workspace's only home for threads.
//!
//! A dependency-free scoped worker pool built from two pieces:
//!
//! * [`ChunkQueue`] — a wait-free claim counter handing out disjoint
//!   `[start, end)` ranges of a work list.  Dynamic chunk claiming gives
//!   load balancing (a worker that draws a cheap chunk immediately claims
//!   another) while keeping results addressable by chunk index, so callers
//!   can reassemble outputs in *input* order no matter which worker ran
//!   which chunk.  The queue's op-level state machine is model-checked
//!   against a reference allocator with the `xseq-telemetry::sched`
//!   interleaving checker (see `tests/sched.rs`), the same harness that
//!   validated `BoundedRing`.
//! * [`Pool`] — a scope/join front end over `std::thread::scope`.  Every
//!   entry point blocks until all spawned work is joined, so borrowed data
//!   flows into workers without `'static` bounds and panics propagate to
//!   the caller.  A pool of one thread (the default) degenerates to plain
//!   in-place iteration with zero thread or lock traffic.
//!
//! Determinism contract: [`Pool::map`], [`Pool::map_chunks`] and
//! [`Pool::run`] return results in input order, independent of thread
//! count and scheduling.  Parallel index construction relies on this — the
//! merge of per-worker interning deltas happens in chunk order, which is
//! document order.
//!
//! The `cargo xtask lint` rule `no-thread-spawn` forbids `thread::spawn`
//! outside this crate: everything else goes through the pool.
#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A wait-free chunk allocator over the index range `0..len`.
///
/// Each [`ChunkQueue::claim`] hands out the next untouched `[start, end)`
/// range of at most `chunk` items; ranges are disjoint, in ascending
/// order of issue, and together cover the whole range exactly once.
/// `start` is always a multiple of `chunk`, so `start / chunk` is a dense
/// chunk index usable as a result slot.
#[derive(Debug)]
pub struct ChunkQueue {
    cursor: AtomicUsize,
    len: usize,
    chunk: usize,
}

impl ChunkQueue {
    /// A queue over `len` items handed out `chunk` at a time (`chunk` is
    /// clamped to at least 1).
    pub fn new(len: usize, chunk: usize) -> Self {
        ChunkQueue {
            cursor: AtomicUsize::new(0),
            len,
            chunk: chunk.max(1),
        }
    }

    /// Claims the next chunk, or `None` when the range is exhausted.
    ///
    /// Safe to call from any number of threads; each index in `0..len` is
    /// handed out exactly once.  Callers are expected to stop on the first
    /// `None` (the pool's workers do), which bounds the cursor overshoot
    /// to one claim per caller.
    pub fn claim(&self) -> Option<(usize, usize)> {
        // relaxed: the fetch_add RMW is the whole synchronization story —
        // it alone makes claims disjoint.  Results computed from a claim
        // travel back to the caller through the scope join (a full
        // happens-before edge), never through this counter.
        let start = self.cursor.fetch_add(self.chunk, Ordering::Relaxed);
        if start >= self.len {
            return None;
        }
        Some((start, (start + self.chunk).min(self.len)))
    }

    /// Total number of items governed by the queue.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the queue governs no items (every claim returns `None`).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The configured chunk size.
    pub fn chunk_size(&self) -> usize {
        self.chunk
    }

    /// Number of chunks a full drain hands out.
    pub fn chunk_count(&self) -> usize {
        self.len.div_ceil(self.chunk)
    }
}

/// A scoped worker pool of a fixed thread count.
///
/// The pool holds no OS resources between calls — threads are spawned
/// inside each entry point's scope and joined before it returns, so a
/// `Pool` is trivially `Send + Sync` and cheap to store or clone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool {
    threads: usize,
}

impl Default for Pool {
    /// A sequential pool (one thread, no spawning).
    fn default() -> Self {
        Pool::new(1)
    }
}

impl Pool {
    /// A pool of `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        Pool {
            threads: threads.max(1),
        }
    }

    /// The worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// True when the pool executes in place on the calling thread.
    pub fn is_sequential(&self) -> bool {
        self.threads == 1
    }

    /// The default chunk size for `len` items: roughly four chunks per
    /// worker, so a straggler chunk costs at most ~1/4 of one worker's
    /// share of the wall clock.
    pub fn chunk_for(&self, len: usize) -> usize {
        len.div_ceil(self.threads * 4).max(1)
    }

    /// Applies `f` to every item, returning results in input order.
    ///
    /// `f` receives the item's index alongside the item.  Work is claimed
    /// in chunks of [`Pool::chunk_for`] via a [`ChunkQueue`].
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let chunk = self.chunk_for(items.len());
        let per_chunk = self.map_chunks(items, chunk, |ci, slice| {
            let base = ci * chunk;
            slice
                .iter()
                .enumerate()
                .map(|(j, item)| f(base + j, item))
                .collect::<Vec<R>>()
        });
        per_chunk.into_iter().flatten().collect()
    }

    /// Applies `f` to contiguous chunks of `items` (at most `chunk` items
    /// each), returning one result per chunk in chunk order.
    ///
    /// `f` receives the dense chunk index (`0..len.div_ceil(chunk)`) and
    /// the chunk slice.  This is the primitive behind parallel ingest:
    /// chunk order *is* document order, so merging per-chunk interning
    /// deltas in result order replays the sequential first-occurrence
    /// order exactly.
    pub fn map_chunks<T, R, F>(&self, items: &[T], chunk: usize, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &[T]) -> R + Sync,
    {
        let chunk = chunk.max(1);
        if items.is_empty() {
            return Vec::new();
        }
        let n_chunks = items.len().div_ceil(chunk);
        if self.threads == 1 || n_chunks == 1 {
            return items
                .chunks(chunk)
                .enumerate()
                .map(|(ci, slice)| f(ci, slice))
                .collect();
        }
        let queue = ChunkQueue::new(items.len(), chunk);
        let slots: Vec<Mutex<Option<R>>> = (0..n_chunks).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|s| {
            for _ in 0..self.threads.min(n_chunks) {
                s.spawn(|| {
                    while let Some((start, end)) = queue.claim() {
                        let ci = start / chunk;
                        let result = f(ci, &items[start..end]);
                        *slots[ci].lock().expect("chunk result lock poisoned") = Some(result);
                    }
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("chunk result lock poisoned")
                    .expect("chunk queue hands every chunk to exactly one worker")
            })
            .collect()
    }

    /// Runs every task on the pool, returning results in task order — the
    /// scope/join API.  Tasks are claimed one at a time (heterogeneous
    /// tasks balance better unchunked); the call joins all workers before
    /// returning, so tasks may borrow from the caller's stack.
    pub fn run<T, F>(&self, tasks: Vec<F>) -> Vec<T>
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        let n = tasks.len();
        if n == 0 {
            return Vec::new();
        }
        if self.threads == 1 || n == 1 {
            return tasks.into_iter().map(|task| task()).collect();
        }
        let queue = ChunkQueue::new(n, 1);
        let task_slots: Vec<Mutex<Option<F>>> =
            tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
        let out_slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|s| {
            for _ in 0..self.threads.min(n) {
                s.spawn(|| {
                    while let Some((i, _)) = queue.claim() {
                        let task = task_slots[i]
                            .lock()
                            .expect("task slot lock poisoned")
                            .take()
                            .expect("chunk queue hands every task index out once");
                        *out_slots[i].lock().expect("result slot lock poisoned") = Some(task());
                    }
                });
            }
        });
        out_slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot lock poisoned")
                    .expect("every claimed task stores its result before the join")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn chunk_queue_partitions_the_range() {
        let q = ChunkQueue::new(10, 3);
        assert_eq!(q.chunk_count(), 4);
        let mut got = Vec::new();
        while let Some(r) = q.claim() {
            got.push(r);
        }
        assert_eq!(got, vec![(0, 3), (3, 6), (6, 9), (9, 10)]);
        assert_eq!(q.claim(), None, "exhausted queues stay exhausted");
    }

    #[test]
    fn chunk_queue_clamps_chunk_to_one() {
        let q = ChunkQueue::new(2, 0);
        assert_eq!(q.chunk_size(), 1);
        assert_eq!(q.claim(), Some((0, 1)));
        assert_eq!(q.claim(), Some((1, 2)));
        assert_eq!(q.claim(), None);
    }

    #[test]
    fn empty_queue_yields_nothing() {
        let q = ChunkQueue::new(0, 4);
        assert!(q.is_empty());
        assert_eq!(q.claim(), None);
    }

    #[test]
    fn map_preserves_input_order_at_every_thread_count() {
        let items: Vec<u32> = (0..103).collect();
        let expect: Vec<u64> = items.iter().map(|&x| u64::from(x) * 3 + 1).collect();
        for threads in [1, 2, 3, 4, 8] {
            let pool = Pool::new(threads);
            let got = pool.map(&items, |i, &x| {
                assert_eq!(i as u32, x, "index argument matches position");
                u64::from(x) * 3 + 1
            });
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn map_chunks_sees_contiguous_slices_in_order() {
        let items: Vec<usize> = (0..25).collect();
        let pool = Pool::new(4);
        let spans = pool.map_chunks(&items, 7, |ci, slice| (ci, slice[0], slice.len()));
        assert_eq!(spans, vec![(0, 0, 7), (1, 7, 7), (2, 14, 7), (3, 21, 4)]);
    }

    #[test]
    fn run_joins_all_tasks_in_task_order() {
        let started = AtomicUsize::new(0);
        let tasks: Vec<_> = (0..17usize)
            .map(|i| {
                let started = &started;
                move || {
                    // relaxed: test-only liveness counter
                    started.fetch_add(1, Ordering::Relaxed);
                    i * i
                }
            })
            .collect();
        let got = Pool::new(4).run(tasks);
        assert_eq!(got, (0..17usize).map(|i| i * i).collect::<Vec<_>>());
        // relaxed: read after the scope join, fully ordered by it
        assert_eq!(started.load(Ordering::Relaxed), 17);
    }

    #[test]
    fn every_item_is_processed_exactly_once() {
        let pool = Pool::new(8);
        let items: Vec<usize> = (0..1000).collect();
        let seen: Vec<usize> = pool.map(&items, |_, &x| x);
        let unique: HashSet<usize> = seen.iter().copied().collect();
        assert_eq!(unique.len(), 1000);
    }

    #[test]
    fn sequential_pool_never_spawns() {
        // Nothing observable to assert beyond behavior: the threads==1
        // paths return before any scope is created.
        let pool = Pool::default();
        assert!(pool.is_sequential());
        assert_eq!(pool.map(&[1, 2, 3], |_, &x| x + 1), vec![2, 3, 4]);
        assert_eq!(pool.run(vec![|| 5]), vec![5]);
    }

    #[test]
    fn chunk_for_balances_roughly_four_per_worker() {
        let pool = Pool::new(4);
        assert_eq!(pool.chunk_for(0), 1);
        assert_eq!(pool.chunk_for(16), 1);
        assert_eq!(pool.chunk_for(160), 10);
        let sequential = Pool::new(1);
        assert_eq!(sequential.chunk_for(100), 25);
    }
}
