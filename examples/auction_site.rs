//! Auction-site scenario: the paper's XMark workload end to end.
//!
//! ```sh
//! cargo run --release --example auction_site
//! ```
//!
//! Generates XMark-shaped substructure records (items, persons, open and
//! closed auctions), indexes them with probability-ordered constraint
//! sequences, runs the paper's Table 4 queries, and shows the disk-access
//! accounting of the paged index (Table 7's metric).

use xseq::datagen::{queries, XmarkGenerator, XmarkOptions};
use xseq::index::{tree_search, QuerySequence, XmlIndex};
use xseq::schema::{ProbabilityModel, WeightMap};
use xseq::sequence::Strategy;
use xseq::storage::{write_paged_trie, MemStore, PagedTrie};
use xseq::{parse_xpath, Corpus, PlanOptions, ValueMode};

fn main() {
    let n = 20_000;
    let mut corpus = Corpus::new(ValueMode::Intern);
    let mut gen = XmarkGenerator::new(42, XmarkOptions::default());
    corpus.docs = gen.generate(n, &mut corpus.symbols);
    println!(
        "generated {} XMark substructure records, {} nodes total",
        corpus.len(),
        corpus.total_nodes()
    );

    // probability model sampled from the data (Section 5.2)
    let model = ProbabilityModel::estimate(&corpus.docs, &mut corpus.paths, 2000);
    let strategy = Strategy::Probability(model.priorities(&corpus.paths, &WeightMap::default()));
    let index = XmlIndex::build(
        &corpus.docs,
        &mut corpus.paths,
        strategy,
        PlanOptions::default(),
    );
    println!("index: {} trie nodes\n", index.node_count());

    // serialize to the paged layout for I/O accounting
    let mut store = MemStore::new();
    let pages = write_paged_trie(index.trie(), &mut store).unwrap();
    let paged = PagedTrie::open(store, 256).unwrap();
    println!("paged index: {pages} pages of 4 KiB\n");

    for (name, expr) in queries::XMARK_QUERIES {
        let pattern = parse_xpath(expr, &mut corpus.symbols).unwrap();
        let t0 = std::time::Instant::now();
        let outcome = index.query(&pattern, &corpus.paths);
        let elapsed = t0.elapsed();

        // replay the same query against the paged index, cold
        paged.reset_pool();
        let concrete =
            xseq::index::instantiate(&pattern, &corpus.paths, index.data_paths(), index.options());
        let mut disk_docs = Vec::new();
        for qdoc in &concrete {
            let qs = QuerySequence::from_document(qdoc, &mut corpus.paths, index.strategy());
            let (docs, _) = tree_search(&paged, &qs);
            disk_docs.extend(docs);
        }
        disk_docs.sort_unstable();
        disk_docs.dedup();
        assert_eq!(disk_docs, outcome.docs, "paged and in-memory answers agree");

        println!("{name}: {expr}");
        println!(
            "  result size {:3}   time {:?}   disk accesses {}",
            outcome.docs.len(),
            elapsed,
            paged.pool_stats().misses
        );
    }
}
