//! Quickstart: index a handful of XML documents and run structured queries.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Demonstrates the core loop of the paper: documents become constraint
//! sequences, queries become tree patterns, and tree patterns are answered
//! holistically — including the Figure 4 case where naïve subsequence
//! matching would return a false alarm.

use xseq::{DatabaseBuilder, Sequencing};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's Figure 1 project document, plus variations.
    let docs = [
        r#"<project name="xml">
             <research><manager>tom</manager><location>newyork</location></research>
             <develop>
               <manager>johnson</manager>
               <unit><manager>mary</manager><name>GUI</name></unit>
               <unit><name>engine</name></unit>
               <location>boston</location>
             </develop>
           </project>"#,
        r#"<project name="db">
             <research><location>boston</location></research>
           </project>"#,
        r#"<project name="web">
             <develop><location>seattle</location><manager>kim</manager></develop>
           </project>"#,
        // Figure 4's false-alarm shape: two units, one with a manager, one
        // with a name — NOT one unit with both.
        r#"<project name="infra">
             <develop>
               <unit><manager>lee</manager></unit>
               <unit><name>ops</name></unit>
             </develop>
           </project>"#,
    ];

    let mut db = DatabaseBuilder::new()
        .sequencing(Sequencing::Probability)
        .build_from_xml(docs)?;

    println!(
        "indexed {} documents, {} trie nodes",
        db.len(),
        db.index().node_count()
    );
    println!();

    let queries = [
        // the paper's Section 3.1 example query
        "/project[research[location='newyork']]/develop[location='boston']",
        // simple paths
        "/project/research/location",
        "//location[text='boston']",
        // wildcards
        "/project/*/location",
        "//manager",
        // the Figure 4 trap: a unit with BOTH a manager and a name.
        // Document 3 has manager and name in *different* units and must not
        // be returned; document 0's GUI unit has both.
        "//unit[manager][name]",
    ];

    for q in queries {
        let outcome = db.query_xpath_full(q)?;
        println!("{q}");
        println!(
            "  -> docs {:?}   ({} instantiations, {} candidates examined, {} sibling-cover rejections)",
            outcome.docs,
            outcome.stats.instantiations,
            outcome.stats.search.candidates,
            outcome.stats.search.cover_rejections,
        );
    }

    // dynamic insertion
    let id = db.insert_xml("<project><research><location>tokyo</location></research></project>")?;
    println!();
    println!(
        "inserted doc {id}; //location[text='tokyo'] -> {:?}",
        db.query_xpath("//location[text='tokyo']")?
    );

    Ok(())
}
