//! Strategy tuning: how sequencing choices change index size — the paper's
//! Section 5 story on a synthetic dataset.
//!
//! ```sh
//! cargo run --release --example strategy_tuning
//! ```
//!
//! Builds the same dataset under random, breadth-first, depth-first and
//! probability-ordered (CS) sequencing, reports trie sizes, and then shows
//! the `w(C)` weight mechanism (Eq. 6) pulling a selective element to the
//! front of the sequences.

use xseq::datagen::{SyntheticDataset, SyntheticParams};
use xseq::index::XmlIndex;
use xseq::schema::{ProbabilityModel, WeightMap};
use xseq::sequence::{sequence_document, Strategy};
use xseq::{PlanOptions, SymbolTable, ValueMode};

fn main() {
    let params = SyntheticParams::fig14a();
    let n = 20_000;
    let mut symbols = SymbolTable::with_value_mode(ValueMode::Intern);
    let ds = SyntheticDataset::generate(&params, n, 1, &mut symbols);
    println!(
        "dataset {} — {} docs, avg sequence length {:.1}\n",
        ds.name,
        ds.docs.len(),
        ds.avg_len()
    );

    println!("{:<28} {:>12}", "strategy", "trie nodes");
    for (name, strategy) in [
        ("random", Strategy::Random { seed: 99 }),
        ("breadth-first", Strategy::BreadthFirst),
        ("depth-first", Strategy::DepthFirst),
    ] {
        let mut paths = xseq::PathTable::new();
        let index = XmlIndex::build(&ds.docs, &mut paths, strategy, PlanOptions::default());
        println!("{name:<28} {:>12}", index.node_count());
    }
    {
        // the PriorityMap is keyed by path ids: estimate and build must
        // share one PathTable
        let mut paths = xseq::PathTable::new();
        let model = ProbabilityModel::estimate(&ds.docs, &mut paths, 2000);
        let strategy = Strategy::Probability(model.priorities(&paths, &WeightMap::default()));
        let index = XmlIndex::build(&ds.docs, &mut paths, strategy, PlanOptions::default());
        println!(
            "{:<28} {:>12}",
            "constraint (probability)",
            index.node_count()
        );
    }

    // --- the tunable weight mechanism -------------------------------------
    println!("\nweight tuning: boost a rare-but-queried path to the sequence front");
    let doc = &ds.docs[0];
    let mut paths = xseq::PathTable::new();
    let model = ProbabilityModel::estimate(&ds.docs, &mut paths, 2000);

    let plain = Strategy::Probability(model.priorities(&paths, &WeightMap::default()));
    let seq_plain = sequence_document(doc, &mut paths, &plain);

    // boost the least probable path of this document
    let enc = doc.path_encode(&mut paths);
    let rare = enc
        .iter()
        .copied()
        .min_by(|a, b| {
            model
                .root_probability(*a)
                .partial_cmp(&model.root_probability(*b))
                .expect("probabilities are finite")
        })
        .expect("document is non-empty");
    let mut w = WeightMap::default();
    w.set(rare, 10_000.0);
    let boosted = Strategy::Probability(model.priorities(&paths, &w));
    let seq_boosted = sequence_document(doc, &mut paths, &boosted);

    let pos_plain = seq_plain.elems().iter().position(|&p| p == rare).unwrap();
    let pos_boosted = seq_boosted.elems().iter().position(|&p| p == rare).unwrap();
    println!("  rare path position without boost: {pos_plain}");
    println!("  rare path position with boost:    {pos_boosted}");
    assert!(pos_boosted <= pos_plain);
    println!("\n(earlier position = smaller search space for queries on that path)");
}
