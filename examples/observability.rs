//! Observability: per-phase latency, work counters, and query EXPLAIN.
//!
//! ```sh
//! cargo run --example observability
//! ```
//!
//! Every database owns a metrics registry.  Ingestion records `xml.parse`,
//! index construction records `sequence.encode`, and each query records
//! `query.parse` / `index.plan` / `sequence.encode` / `index.search`
//! latencies plus the matcher's work counters.  Paged storage mirrors its
//! page traffic into `storage.pool.*` when attached.  With tracing enabled,
//! every query additionally records a span tree retained in the slow-query
//! log.  This example runs a small workload and prints one query's EXPLAIN
//! (including its span tree), the slow-query log, the metrics table, an
//! interval delta, and the JSON export.

use std::time::Duration;
use xseq::index::{tree_search, QuerySequence};
use xseq::storage::{write_paged_trie, MemStore, PagedTrie};
use xseq::telemetry::{render_table, to_json};
use xseq::{DatabaseBuilder, Sequencing, TraceConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let docs = [
        r#"<project name="xml">
             <research><manager>tom</manager><location>newyork</location></research>
             <develop><manager>johnson</manager><location>boston</location></develop>
           </project>"#,
        r#"<project name="db"><research><location>boston</location></research></project>"#,
        r#"<project name="web"><develop><location>seattle</location></develop></project>"#,
    ];
    let mut db = DatabaseBuilder::new()
        .sequencing(Sequencing::Probability)
        .trace_config(TraceConfig {
            sample_rate: 1.0,               // demo: trace every query
            slow_threshold: Duration::ZERO, // demo: retain every query as "slow"
            ..TraceConfig::default()
        })
        .build_from_xml(docs)?;

    // --- per-query EXPLAIN ------------------------------------------------
    let outcome = db.query_xpath_full("/project//location[text='boston']")?;
    println!("EXPLAIN /project//location[text='boston']");
    print!("{}", outcome.explain());
    println!();

    // --- the slow-query log and the Chrome trace export -------------------
    let slow = db.slow_queries();
    println!("slow-query log: {} trace(s) retained", slow.len());
    if let Some(trace) = slow.last() {
        let json = trace.to_chrome_json();
        println!(
            "chrome trace JSON for {:?}: {} bytes (load in chrome://tracing or Perfetto)",
            trace.name,
            json.len()
        );
    }
    println!();

    // --- interval measurement via snapshot/delta --------------------------
    let before = db.metrics();
    for q in ["/project/research", "//location", "/project/*/manager"] {
        db.query_xpath(q)?;
    }
    let after = db.metrics();
    let delta = after.delta(&before);
    println!(
        "3 queries just ran: index.search count={} candidates={}",
        delta
            .histogram("index.search")
            .map(|h| h.count)
            .unwrap_or(0),
        delta.counter("index.search.candidates"),
    );
    println!();

    // --- paged storage traffic into the same registry ---------------------
    let mut store = MemStore::new();
    write_paged_trie(db.index().trie(), &mut store)?;
    let paged = PagedTrie::open(store, 16)?;
    paged.attach_pool_telemetry(db.pool_telemetry());
    let pattern = xseq::parse_xpath("//location", &mut db.corpus.symbols)?;
    let concrete = xseq::index::instantiate(
        &pattern,
        &db.corpus.paths,
        db.index().data_paths(),
        db.index().options(),
    );
    let strategy = db.index().strategy().clone();
    for qdoc in concrete {
        let qs = QuerySequence::from_document(&qdoc, &mut db.corpus.paths, &strategy);
        let _ = tree_search(&paged, &qs);
    }
    let pool = paged.pool_stats();
    println!(
        "paged query: {} hits, {} misses (hit ratio {:.0}%)",
        pool.hits,
        pool.misses,
        pool.hit_ratio().unwrap_or(0.0) * 100.0
    );
    println!();

    // --- the full registry ------------------------------------------------
    println!("{}", render_table(&db.metrics()));
    println!("JSON export:\n{}", to_json(&db.metrics()));
    Ok(())
}
