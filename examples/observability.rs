//! Observability: per-phase latency, work counters, and query EXPLAIN.
//!
//! ```sh
//! cargo run --example observability
//! cargo run --example observability -- --diag target/diag
//! ```
//!
//! Every database owns a metrics registry.  Ingestion records `xml.parse`,
//! index construction records `sequence.encode`, and each query records
//! `query.parse` / `index.plan` / `sequence.encode` / `index.search`
//! latencies plus the matcher's work counters.  Paged storage mirrors its
//! page traffic into `storage.pool.*` when attached.  With tracing enabled,
//! every query additionally records a span tree retained in the slow-query
//! log.  This example runs a small workload and prints one query's EXPLAIN
//! (including its span tree), the slow-query log, the flight-recorder
//! journal, an anomaly-detector transcript, the collapsed phase profile,
//! the metrics table, an interval delta, and the JSON export.  With
//! `--diag DIR` it finishes by writing the whole state as one
//! self-contained diagnostics bundle (validated in CI by
//! `cargo xtask diagcheck DIR`).

use std::sync::Arc;
use std::time::Duration;
use xseq::exec::Ticker;
use xseq::index::{tree_search, QuerySequence};
use xseq::storage::{write_paged_trie, MemStore, PagedTrie};
use xseq::telemetry::{render_table, to_json, to_prometheus, MetricsJournal, Watchdog};
use xseq::{
    AnomalyDetector, DatabaseBuilder, PathId, PathTable, Sequencing, SloPolicy, SymbolTable,
    TraceConfig,
};

/// Renders a schema node class back into `/a/b[='v']` form for display.
fn render_class(paths: &PathTable, symbols: &SymbolTable, c: PathId) -> String {
    let mut out = String::new();
    for s in paths.symbols(c) {
        if let Some(d) = s.as_elem() {
            out.push('/');
            out.push_str(symbols.name(d));
        } else if let Some(v) = s.as_value() {
            out.push_str("['");
            out.push_str(symbols.values.resolve(v).unwrap_or("?"));
            out.push_str("']");
        }
    }
    out
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // `--diag DIR`: finish by writing the diagnostics bundle into DIR.
    let args: Vec<String> = std::env::args().skip(1).collect();
    let diag_dir = match args.as_slice() {
        [] => None,
        [flag, dir] if flag == "--diag" => Some(dir.clone()),
        _ => {
            eprintln!("usage: observability [--diag DIR]");
            std::process::exit(2);
        }
    };
    let docs = [
        r#"<project name="xml">
             <research><manager>tom</manager><location>newyork</location></research>
             <develop><manager>johnson</manager><location>boston</location></develop>
           </project>"#,
        r#"<project name="db"><research><location>boston</location></research></project>"#,
        r#"<project name="web"><develop><location>seattle</location></develop></project>"#,
    ];
    let mut db = DatabaseBuilder::new()
        .sequencing(Sequencing::Probability)
        .trace_config(TraceConfig {
            sample_rate: 1.0,               // demo: trace every query
            slow_threshold: Duration::ZERO, // demo: retain every query as "slow"
            ..TraceConfig::default()
        })
        .build_from_xml(docs)?;

    // --- per-query EXPLAIN ------------------------------------------------
    let outcome = db.query_xpath_full("/project//location[text='boston']")?;
    println!("EXPLAIN /project//location[text='boston']");
    print!("{}", outcome.explain());
    println!();

    // --- the slow-query log and the Chrome trace export -------------------
    let slow = db.slow_queries();
    println!("slow-query log: {} trace(s) retained", slow.len());
    if let Some(trace) = slow.last() {
        let json = trace.to_chrome_json();
        println!(
            "chrome trace JSON for {:?}: {} bytes (load in chrome://tracing or Perfetto)",
            trace.name,
            json.len()
        );
    }
    println!();

    // --- interval measurement via snapshot/delta --------------------------
    let before = db.metrics();
    for q in ["/project/research", "//location", "/project/*/manager"] {
        db.query_xpath(q)?;
    }
    let after = db.metrics();
    let delta = after.delta(&before);
    println!(
        "3 queries just ran: index.search count={} candidates={}",
        delta
            .histogram("index.search")
            .map(|h| h.count)
            .unwrap_or(0),
        delta.counter("index.search.candidates"),
    );
    println!();

    // --- the workload profiler (Eq. 6 input) ------------------------------
    // Every executed query lands in a per-class accounting: frequency,
    // result cardinality, and latency per schema node class — the raw
    // material for the paper's query weight `w(C)`.
    let profile = db.workload_profile();
    println!(
        "workload profile: {} queries over {} classes ({} unclassified)",
        profile.queries(),
        profile.len(),
        profile.unclassified()
    );
    for (class, stats) in profile.iter() {
        println!(
            "  {:<40} freq {:.2}  queries {}  mean results {:.1}",
            render_class(&db.corpus().paths, &db.corpus().symbols, class),
            profile.frequency(class),
            stats.queries,
            stats.mean_results().unwrap_or(0.0),
        );
    }
    println!("profile JSON export: {} bytes", profile.to_json().len());
    println!();

    // --- paged storage traffic into the same registry ---------------------
    let mut store = MemStore::new();
    write_paged_trie(db.index().trie(), &mut store)?;
    let paged = PagedTrie::open(store, 16)?;
    paged.attach_pool_telemetry(db.pool_telemetry());
    let pattern = xseq::parse_xpath("//location", &mut db.corpus_mut().symbols)?;
    let concrete = xseq::index::instantiate(
        &pattern,
        &db.corpus().paths,
        db.index().data_paths(),
        db.index().options(),
    );
    let strategy = db.index().strategy().clone();
    for qdoc in concrete {
        let qs = QuerySequence::from_document(&qdoc, &mut db.corpus_mut().paths, &strategy);
        let _ = tree_search(&paged, &qs);
    }
    let pool = paged.pool_stats();
    println!(
        "paged query: {} hits, {} misses (hit ratio {:.0}%)",
        pool.hits,
        pool.misses,
        pool.hit_ratio().unwrap_or(0.0) * 100.0
    );
    println!();

    // --- deep index statistics + memory attribution -----------------------
    // One read-only walk over frozen ∪ delta: trie shape, sequence-length
    // distribution, link density, overlay occupancy, and modelled heap
    // bytes per component (also mirrored into the `memory.*` gauges).
    print!("{}", db.stats().render());
    println!();

    // --- liveness watchdog + metrics journal ------------------------------
    // A Ticker drives `Watchdog::tick` on a wall-clock cadence in
    // production; the demo also ticks by hand so the printed transcript is
    // deterministic.
    let registry = Arc::clone(db.metrics_registry());
    let watchdog = Arc::new(Watchdog::new(Arc::clone(&registry), 2));
    let ingest = watchdog.register("ingest");
    let journal = MetricsJournal::new(Arc::clone(&registry));
    let ticker = {
        let watchdog = Arc::clone(&watchdog);
        Ticker::spawn(Duration::from_millis(25), move || {
            watchdog.tick();
        })
    };
    ingest.set_active(true);
    ingest.beat();
    watchdog.tick(); // heartbeat observed
    watchdog.tick(); // one silent tick
    let stalled = watchdog.tick(); // two silent ticks -> flagged
    println!("watchdog: stalled after 2 silent ticks: {stalled:?}");
    ingest.beat();
    ingest.set_active(false); // park the worker: heartbeats are no longer due
    watchdog.tick();
    println!(
        "watchdog: heartbeat clears the flag; health.workers.stalled = {}",
        db.metrics().gauge("health.workers.stalled").unwrap_or(0)
    );
    drop(ticker); // stops and joins the background thread
    let _ = journal.tick(); // baseline interval
    db.query_xpath("//manager")?;
    print!("metrics journal (one interval):\n{}", journal.tick());
    println!();

    // --- the flight recorder ----------------------------------------------
    // Every lifecycle event — builds, inserts, removals, compactions,
    // configuration changes, integrity violations, slow queries — lands in
    // a bounded journal the moment it happens.  Updates exercise it here;
    // the threshold change below flight-records itself too.
    db.set_slow_query_threshold(Duration::from_secs(30));
    let id = db.insert_document(
        r#"<project name="ops"><develop><location>berlin</location></develop></project>"#,
    )?;
    db.remove_document(id);
    db.compact();
    let counts = db.events().counts();
    println!(
        "flight recorder: {} events recorded ({} warn+, journal JSONL export below)",
        counts.recorded,
        counts.by_severity[2] + counts.by_severity[3]
    );
    for e in db.events().events() {
        println!("  #{} [{}] {}", e.seq, e.severity.as_str(), e.name);
    }
    println!();

    // --- online anomaly / SLO detection -----------------------------------
    // The detector learns per-metric baselines (a P² p50 estimate for
    // latency, an EWMA for throughput) from snapshot deltas on a tick
    // cadence, and raises `anomaly.*` gauges + flight-recorder alerts when
    // an interval's p99 deviates past the policy's burn-rate thresholds.
    let detector = AnomalyDetector::new(Arc::clone(&registry), SloPolicy::default())
        .events(Arc::clone(db.events()))
        .watch_latency("index.search");
    let mut alerts = 0;
    for _ in 0..4 {
        for q in ["//location", "/project/research", "/project/*/manager"] {
            for _ in 0..4 {
                db.query_xpath(q)?;
            }
        }
        alerts += detector.tick().len();
    }
    println!(
        "anomaly detector: 4 intervals judged, {alerts} alert(s), baseline p50 {} ns",
        db.metrics()
            .gauge("anomaly.latency.index_search.baseline_ns")
            .unwrap_or(0)
    );
    println!();

    // --- the continuous phase profiler ------------------------------------
    // Always-on wall-time attribution folded from the span-timer
    // histograms every path already maintains — no sampling, no profiler
    // process.  The collapsed form loads directly into flamegraph tooling.
    println!("collapsed phase profile (frame;frame nanoseconds):");
    print!("{}", db.phase_profile().to_collapsed());
    println!();

    // --- the full registry ------------------------------------------------
    println!("{}", render_table(&db.metrics()));
    println!("JSON export:\n{}", to_json(&db.metrics()));

    // --- Prometheus text exposition ---------------------------------------
    // CI scrapes this file with `cargo xtask promlint target/metrics.prom`.
    let prom = to_prometheus(&db.metrics());
    std::fs::create_dir_all("target")?;
    std::fs::write("target/metrics.prom", &prom)?;
    println!(
        "prometheus exposition: {} bytes -> target/metrics.prom",
        prom.len()
    );

    // --- one-command diagnostics bundle -----------------------------------
    if let Some(dir) = diag_dir {
        let report = db.diagnostics(&dir)?;
        println!(
            "diagnostics bundle: {} artifacts -> {}",
            report.files.len(),
            report.dir.display()
        );
    }
    Ok(())
}
