//! Bibliography scenario: DBLP-shaped records, sequence index vs the
//! classical baselines (Table 8's comparison).
//!
//! ```sh
//! cargo run --release --example bibliography
//! ```

use std::time::Instant;
use xseq::baselines::{NodeIndex, PathIndex, VistIndex};
use xseq::datagen::{queries, DblpGenerator};
use xseq::index::XmlIndex;
use xseq::schema::{ProbabilityModel, WeightMap};
use xseq::sequence::Strategy;
use xseq::{parse_xpath, Corpus, PlanOptions, ValueMode};

fn main() {
    let n = 50_000;
    let mut corpus = Corpus::new(ValueMode::Intern);
    corpus.docs = DblpGenerator::new(7).generate(n, &mut corpus.symbols);
    let avg = corpus.total_nodes() as f64 / corpus.len() as f64;
    println!(
        "generated {} DBLP-shaped records, avg {avg:.1} nodes/record\n",
        corpus.len()
    );

    // build all four engines over the same corpus
    let t = Instant::now();
    let path_idx = PathIndex::build(&corpus.docs, &mut corpus.paths);
    println!(
        "path index (DataGuide-like): {} distinct paths, built in {:?}",
        path_idx.path_count(),
        t.elapsed()
    );

    let t = Instant::now();
    let node_idx = NodeIndex::build(&corpus.docs);
    println!(
        "node index (XISS-like):      {} label entries, built in {:?}",
        node_idx.entry_count(),
        t.elapsed()
    );

    let t = Instant::now();
    let vist = VistIndex::build(&corpus.docs, &mut corpus.paths);
    println!(
        "ViST (DF sequences):         {} trie nodes, built in {:?}",
        vist.node_count(),
        t.elapsed()
    );

    let t = Instant::now();
    let model = ProbabilityModel::estimate(&corpus.docs, &mut corpus.paths, 2000);
    let strategy = Strategy::Probability(model.priorities(&corpus.paths, &WeightMap::default()));
    let cs = XmlIndex::build(
        &corpus.docs,
        &mut corpus.paths,
        strategy,
        PlanOptions::default(),
    );
    println!(
        "CS (constraint sequences):   {} trie nodes, built in {:?}\n",
        cs.node_count(),
        t.elapsed()
    );

    println!(
        "{:<4} {:>8} {:>12} {:>12} {:>12} {:>12}",
        "", "results", "paths(ms)", "nodes(ms)", "vist(ms)", "cs(ms)"
    );
    for (name, expr) in queries::DBLP_QUERIES {
        let pattern = parse_xpath(expr, &mut corpus.symbols).unwrap();

        let t = Instant::now();
        let (r1, _) = path_idx.query(&pattern, &corpus.docs, &corpus.paths);
        let t1 = t.elapsed();

        let t = Instant::now();
        let (r2, _) = node_idx.query(&pattern, &corpus.docs);
        let t2 = t.elapsed();

        let t = Instant::now();
        let (r3, _) = vist.query(&pattern, &corpus.docs, &mut corpus.paths);
        let t3 = t.elapsed();

        let t = Instant::now();
        let r4 = cs.query(&pattern, &corpus.paths).docs;
        let t4 = t.elapsed();

        assert_eq!(r1, r2);
        assert_eq!(r2, r3);
        assert_eq!(r3, r4);
        println!(
            "{:<4} {:>8} {:>12.3} {:>12.3} {:>12.3} {:>12.3}   {}",
            name,
            r4.len(),
            t1.as_secs_f64() * 1e3,
            t2.as_secs_f64() * 1e3,
            t3.as_secs_f64() * 1e3,
            t4.as_secs_f64() * 1e3,
            expr
        );
    }
    println!("\nall four engines returned identical answers for every query");
}
