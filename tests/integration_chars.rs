//! The paper's second value representation end to end: values as
//! per-character chains ("represent 'boston' by b,o,s,t,o,n", Section 2.1),
//! which makes matching *inside* attribute values possible — exact equality
//! via the chain terminator, starts-with via an unterminated chain (`^=`).

use xseq::{DatabaseBuilder, Sequencing, ValueMode};

const DOCS: &[&str] = &[
    "<p><loc>boston</loc></p>",
    "<p><loc>boise</loc></p>",
    "<p><loc>newyork</loc></p>",
    "<p><loc>bo</loc></p>",
];

fn db(seq: Sequencing) -> xseq::Database {
    DatabaseBuilder::new()
        .sequencing(seq)
        .value_mode(ValueMode::Chars)
        .build_from_xml(DOCS.iter().copied())
        .unwrap()
}

#[test]
fn exact_equality_via_terminated_chain() {
    for seq in [Sequencing::DepthFirst, Sequencing::Probability] {
        let d = db(seq);
        assert_eq!(
            d.query_xpath("/p/loc[text='boston']").unwrap(),
            vec![0],
            "{seq:?}"
        );
        assert_eq!(
            d.query_xpath("/p/loc[text='bo']").unwrap(),
            vec![3],
            "{seq:?}"
        );
        assert!(
            d.query_xpath("/p/loc[text='bost']").unwrap().is_empty(),
            "{seq:?}"
        );
    }
}

#[test]
fn starts_with_via_unterminated_chain() {
    for seq in [Sequencing::DepthFirst, Sequencing::Probability] {
        let d = db(seq);
        // 'bo' prefix: boston, boise, bo
        assert_eq!(
            d.query_xpath("/p/loc[text^='bo']").unwrap(),
            vec![0, 1, 3],
            "{seq:?}"
        );
        assert_eq!(
            d.query_xpath("/p/loc[text^='bos']").unwrap(),
            vec![0],
            "{seq:?}"
        );
        assert_eq!(
            d.query_xpath("/p/loc[text^='new']").unwrap(),
            vec![2],
            "{seq:?}"
        );
        assert!(
            d.query_xpath("/p/loc[text^='z']").unwrap().is_empty(),
            "{seq:?}"
        );
        // empty prefix matches every value-bearing loc
        assert_eq!(
            d.query_xpath("/p/loc[text^='']").unwrap(),
            vec![0, 1, 2, 3],
            "{seq:?}"
        );
    }
}

#[test]
fn prefix_operator_in_branch_predicates() {
    let d = db(Sequencing::Probability);
    assert_eq!(d.query_xpath("/p[loc^='bo']").unwrap(), vec![0, 1, 3]);
    assert_eq!(d.query_xpath("/p[loc='newyork']").unwrap(), vec![2]);
}

#[test]
fn chars_roundtrip_through_writer() {
    let d = db(Sequencing::DepthFirst);
    let texts: Vec<String> = d
        .corpus()
        .docs
        .iter()
        .map(|doc| xseq::xml::write_document(doc, &d.corpus().symbols))
        .collect();
    assert_eq!(texts[0], "<p><loc>boston</loc></p>");
    // rebuild from serialized text: same answers
    let d2 = DatabaseBuilder::new()
        .value_mode(ValueMode::Chars)
        .build_from_xml(texts.iter().map(String::as_str))
        .unwrap();
    assert_eq!(
        d.query_xpath("/p/loc[text^='bo']").unwrap(),
        d2.query_xpath("/p/loc[text^='bo']").unwrap()
    );
}

#[test]
fn atomic_modes_treat_prefix_as_equality() {
    // In Intern/Hashed modes values are atomic designators; `^=` degrades to
    // `=` by documented design.
    let d = DatabaseBuilder::new()
        .build_from_xml(DOCS.iter().copied())
        .unwrap();
    assert_eq!(d.query_xpath("/p/loc[text^='bo']").unwrap(), vec![3]);
}

#[test]
fn chars_mode_with_wildcards() {
    let d = db(Sequencing::Probability);
    assert_eq!(d.query_xpath("//loc[text^='bois']").unwrap(), vec![1]);
    assert_eq!(d.query_xpath("/p/*[text='boston']").unwrap(), vec![0]);
}
