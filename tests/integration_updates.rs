//! Differential update testing (DESIGN.md §11).
//!
//! The update subsystem's contract is *equivalence with a from-scratch
//! rebuild*: after **any** history of inserts, removes and compactions,
//! query results and integrity reports must be exactly what an index built
//! directly over the surviving documents produces — across all four
//! sequencing strategies and 1–4 ingest threads.
//!
//! Two levels:
//!
//! * **Index level** (`updates_match_from_scratch_rebuild`): random
//!   synthetic corpora, a random split into base build + delta inserts, a
//!   random tombstone set; every document then runs as a whole-document
//!   containment query against both the live (frozen ∪ delta − tombstones)
//!   index and a from-scratch rebuild over the survivors.  Strategies are
//!   re-derived per side (the probability estimator sees different corpora)
//!   — result equality is exactly the paper's claim that answers are
//!   strategy-independent.
//! * **Database level** (`update_histories_compact_to_rebuild`): random
//!   interleavings of `insert_document` / `remove_document` / `compact`
//!   over XML strings, ending in a final compaction; the result must be
//!   **bit-identical** (trie arenas, labels, links, interner sizes) to
//!   `DatabaseBuilder::build_from_xml` over the surviving strings.
//!
//! The CI update-fuzz smoke job shrinks the case budget through
//! `XSEQ_UPDATE_FUZZ_CASES`; locally the defaults below run.

use proptest::prelude::*;
use xseq::datagen::{SyntheticDataset, SyntheticParams};
use xseq::index::QuerySequence;
use xseq::schema::{ProbabilityModel, WeightMap};
use xseq::sequence::Strategy;
use xseq::xml::write_document;
use xseq::{
    DatabaseBuilder, DocId, Document, PathTable, PlanOptions, Pool, Sequencing, SymbolTable,
    ValueMode, XmlIndex,
};

/// Case budget, shrinkable by the CI smoke job via `XSEQ_UPDATE_FUZZ_CASES`.
fn fuzz_cases(default: u32) -> u32 {
    std::env::var("XSEQ_UPDATE_FUZZ_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The four sequencing strategies, each derived against the corpus and
/// path table it will index (probability priorities hold table-specific
/// path ids and corpus-specific estimates).
fn strategy(kind: usize, docs: &[Document], paths: &mut PathTable) -> Strategy {
    match kind {
        0 => Strategy::DepthFirst,
        1 => Strategy::BreadthFirst,
        2 => Strategy::Random { seed: 0x5eed },
        _ => {
            let model = ProbabilityModel::estimate(docs, paths, 0);
            Strategy::Probability(model.priorities(paths, &WeightMap::default()))
        }
    }
}

/// Runs `qdoc` as a whole-document containment query against `index`.
fn containment_query(index: &XmlIndex, qdoc: &Document, paths: &PathTable) -> Vec<DocId> {
    match QuerySequence::from_document_readonly(qdoc, paths, index.strategy()) {
        Some(qs) => index.query_sequence(&qs).0,
        // A query path absent from the table is provably empty.
        None => Vec::new(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(fuzz_cases(6)))]

    /// Index level: *frozen ∪ delta − tombstones* answers and verifies
    /// exactly like a from-scratch rebuild over the survivors, for all four
    /// strategies at 1–4 threads.
    #[test]
    fn updates_match_from_scratch_rebuild(
        seed in 0u64..1_000,
        nbase in 1usize..10,
        nextra in 1usize..6,
        threads in 1usize..=4,
        max_fanout in 1u16..4,
        remove_bits in any::<u64>(),
    ) {
        let params = SyntheticParams {
            max_height: 4,
            max_fanout,
            value_pct: 25,
            identical_pct: 0,
            prob_floor_pct: 30,
        };
        let mut symbols = SymbolTable::with_value_mode(ValueMode::Intern);
        let total = nbase + nextra;
        let docs = SyntheticDataset::generate(&params, total, seed, &mut symbols).docs;
        let removed: Vec<bool> = (0..total).map(|i| (remove_bits >> (i % 64)) & 1 == 1).collect();
        for kind in 0..4 {
            // Live: base build, then delta inserts, then tombstones.
            let mut paths = PathTable::new();
            let strat = strategy(kind, &docs[..nbase], &mut paths);
            let mut live = XmlIndex::build_parallel(
                &docs[..nbase],
                &mut paths,
                strat,
                PlanOptions::default(),
                None,
                &Pool::new(threads),
            );
            for (i, d) in docs[nbase..].iter().enumerate() {
                live.insert_delta(d, (nbase + i) as DocId, &mut paths);
            }
            let mut rank: Vec<Option<DocId>> = vec![None; total];
            let mut surv_docs: Vec<Document> = Vec::new();
            for (id, doc) in docs.iter().enumerate() {
                if removed[id] {
                    live.remove_doc(id as DocId);
                } else {
                    rank[id] = Some(surv_docs.len() as DocId);
                    surv_docs.push(doc.clone());
                }
            }
            // Reference: from-scratch build over the survivors, with the
            // strategy re-derived over *them* (what a rebuild would do).
            let mut ref_paths = PathTable::new();
            let ref_strat = strategy(kind, &surv_docs, &mut ref_paths);
            let reference = XmlIndex::build(
                &surv_docs,
                &mut ref_paths,
                ref_strat,
                PlanOptions::default(),
            );
            // Every document — surviving, removed, delta-inserted — as a
            // containment query: answers must agree modulo id renumbering.
            for (qid, qdoc) in docs.iter().enumerate() {
                let live_hits = containment_query(&live, qdoc, &paths);
                let mapped: Vec<DocId> = live_hits
                    .iter()
                    .map(|d| {
                        rank[*d as usize]
                            .unwrap_or_else(|| panic!("live query returned tombstoned doc {d}"))
                    })
                    .collect();
                let ref_hits = containment_query(&reference, qdoc, &ref_paths);
                prop_assert_eq!(
                    mapped, ref_hits,
                    "strategy {} / {} threads / query doc {}", kind, threads, qid
                );
            }
            let live_report = live.verify_integrity(&mut paths);
            prop_assert!(live_report.is_clean(), "live: {}", live_report.render());
            let ref_report = reference.verify_integrity(&mut ref_paths);
            prop_assert!(ref_report.is_clean(), "reference: {}", ref_report.render());
        }
    }
}

/// Tiny deterministic generator for the database-level op stream.
fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(fuzz_cases(8)))]

    /// Database level: any insert/remove/compact interleaving, once
    /// compacted, is bit-identical to `build_from_xml` over the surviving
    /// XML strings — for both database sequencing modes at 1–4 threads.
    #[test]
    fn update_histories_compact_to_rebuild(
        seed in 0u64..1_000,
        ninitial in 1usize..6,
        npending in 1usize..8,
        nops in 1usize..16,
        threads in 1usize..=4,
    ) {
        let params = SyntheticParams {
            max_height: 4,
            max_fanout: 3,
            value_pct: 25,
            identical_pct: 0,
            prob_floor_pct: 30,
        };
        let mut symbols = SymbolTable::with_value_mode(ValueMode::Intern);
        let docs = SyntheticDataset::generate(&params, ninitial + npending, seed, &mut symbols).docs;
        let xmls: Vec<String> = docs.iter().map(|d| write_document(d, &symbols)).collect();
        for sequencing in [Sequencing::DepthFirst, Sequencing::Probability] {
            // shards(1): compact ≡ rebuild bit-identity is a single-shard
            // property — sharded histories live in integration_sharding.rs.
            let mut db = DatabaseBuilder::new()
                .sequencing(sequencing)
                .threads(threads)
                .shards(1)
                .build_from_xml(xmls[..ninitial].iter().map(String::as_str))
                .unwrap();
            // Model: current id order → (xml, alive).
            let mut model: Vec<(&str, bool)> =
                xmls[..ninitial].iter().map(|x| (x.as_str(), true)).collect();
            let mut pending = xmls[ninitial..].iter().map(String::as_str);
            let mut rng = seed ^ 0x9e3779b97f4a7c15;
            for _ in 0..nops {
                match lcg(&mut rng) % 10 {
                    0..=4 => {
                        if let Some(xml) = pending.next() {
                            let id = db.insert_document(xml).unwrap();
                            prop_assert_eq!(id as usize, model.len(), "ids stay dense");
                            model.push((xml, true));
                        }
                    }
                    5..=7 => {
                        let alive = model.iter().filter(|(_, a)| *a).count();
                        if alive > 1 {
                            let id = (lcg(&mut rng) as usize) % model.len();
                            let did = db.remove_document(id as DocId);
                            prop_assert_eq!(did, model[id].1, "remove reports liveness");
                            model[id].1 = false;
                        }
                    }
                    _ => {
                        db.compact();
                        model.retain(|(_, a)| *a);
                    }
                }
            }
            db.compact();
            model.retain(|(_, a)| *a);
            let survivors: Vec<&str> = model.iter().map(|(x, _)| *x).collect();
            let reference = DatabaseBuilder::new()
                .sequencing(sequencing)
                .build_from_xml(survivors.iter().copied())
                .unwrap();
            prop_assert!(
                db.index().trie().identical_to(reference.index().trie()),
                "{sequencing:?}: compacted trie diverges from rebuild"
            );
            prop_assert_eq!(db.index().data_paths(), reference.index().data_paths());
            prop_assert_eq!(db.corpus().paths.len(), reference.corpus().paths.len());
            prop_assert_eq!(
                db.corpus().symbols.designator_count(),
                reference.corpus().symbols.designator_count()
            );
            prop_assert_eq!(
                db.corpus().symbols.values.len(),
                reference.corpus().symbols.values.len()
            );
            for q in ["/e0", "//e1", "//e2", "/e0/e1", "/e0/e2", "//e4"] {
                prop_assert_eq!(
                    db.query_xpath(q).unwrap(),
                    reference.query_xpath(q).unwrap(),
                    "{:?}: {}", sequencing, q
                );
            }
            let mut db = db;
            let report = db.verify_integrity();
            prop_assert!(report.is_clean(), "{sequencing:?}: {}", report.render());
        }
    }
}

/// Concurrent readers vs. updates: `query_batch` racing the update path.
///
/// Rust's borrow rules make a *torn* read statically impossible —
/// `insert_document`/`compact` take `&mut Database`, so readers only ever
/// hold a reference to a fully pre- or fully post-update database (the
/// logical interleavings of the delta structures themselves are model
/// checked exhaustively in `xseq_index::check_updates`).  What this test
/// pins is the epoch contract that rests on that: after *every* update
/// step, a fleet of scoped-thread readers issuing `query_batch` (itself
/// fanning out on the pool) all agree exactly with a serial query loop
/// over the post-update state — no reader observes a stale delta, a
/// dropped tombstone, or a half-compacted trie.
#[test]
fn concurrent_query_batches_agree_with_every_update_epoch() {
    let params = SyntheticParams {
        max_height: 4,
        max_fanout: 3,
        value_pct: 25,
        identical_pct: 0,
        prob_floor_pct: 30,
    };
    let mut symbols = SymbolTable::with_value_mode(ValueMode::Intern);
    let docs = SyntheticDataset::generate(&params, 10, 0xeb0c, &mut symbols).docs;
    let xmls: Vec<String> = docs.iter().map(|d| write_document(d, &symbols)).collect();
    let exprs = ["/e0", "//e1", "//e2", "/e0/e1", "/e0/e2", "//e3"];
    let mut db = DatabaseBuilder::new()
        .threads(4)
        .build_from_xml(xmls[..4].iter().map(String::as_str))
        .expect("initial corpus parses");
    let mut pending = xmls[4..].iter();
    // insert ×2, remove, insert, compact, insert, remove, compact.
    let steps: [&str; 8] = [
        "insert", "insert", "remove", "insert", "compact", "insert", "remove", "compact",
    ];
    let mut next_victim: DocId = 0;
    for step in steps {
        match step {
            "insert" => {
                let xml = pending.next().expect("enough pending documents");
                db.insert_document(xml).expect("pending document parses");
            }
            "remove" => {
                db.remove_document(next_victim);
                next_victim += 1;
            }
            _ => {
                db.compact();
                next_victim = 0;
            }
        }
        let expected: Vec<Vec<DocId>> = exprs
            .iter()
            .map(|e| db.query_xpath(e).expect("query parses"))
            .collect();
        std::thread::scope(|s| {
            let readers: Vec<_> = (0..4).map(|_| s.spawn(|| db.query_batch(&exprs))).collect();
            for reader in readers {
                let got: Vec<Vec<DocId>> = reader
                    .join()
                    .expect("reader thread")
                    .into_iter()
                    .map(|r| r.expect("query parses"))
                    .collect();
                assert_eq!(got, expected, "reader diverged after step {step:?}");
            }
        });
    }
}
