//! Differential update testing (DESIGN.md §11).
//!
//! The update subsystem's contract is *equivalence with a from-scratch
//! rebuild*: after **any** history of inserts, removes and compactions,
//! query results and integrity reports must be exactly what an index built
//! directly over the surviving documents produces — across all four
//! sequencing strategies and 1–4 ingest threads.
//!
//! Two levels:
//!
//! * **Index level** (`updates_match_from_scratch_rebuild`): random
//!   synthetic corpora, a random split into base build + delta inserts, a
//!   random tombstone set; every document then runs as a whole-document
//!   containment query against both the live (frozen ∪ delta − tombstones)
//!   index and a from-scratch rebuild over the survivors.  Strategies are
//!   re-derived per side (the probability estimator sees different corpora)
//!   — result equality is exactly the paper's claim that answers are
//!   strategy-independent.
//! * **Database level** (`update_histories_compact_to_rebuild`): random
//!   interleavings of `insert_document` / `remove_document` / `compact`
//!   over XML strings, ending in a final compaction; the result must be
//!   **bit-identical** (trie arenas, labels, links, interner sizes) to
//!   `DatabaseBuilder::build_from_xml` over the surviving strings.
//!
//! The CI update-fuzz smoke job shrinks the case budget through
//! `XSEQ_UPDATE_FUZZ_CASES`; locally the defaults below run.

use proptest::prelude::*;
use xseq::datagen::{SyntheticDataset, SyntheticParams};
use xseq::index::QuerySequence;
use xseq::schema::{ProbabilityModel, WeightMap};
use xseq::sequence::Strategy;
use xseq::xml::write_document;
use xseq::{
    DatabaseBuilder, DocId, Document, PathTable, PlanOptions, Pool, Sequencing, SymbolTable,
    ValueMode, XmlIndex,
};

/// Case budget, shrinkable by the CI smoke job via `XSEQ_UPDATE_FUZZ_CASES`.
fn fuzz_cases(default: u32) -> u32 {
    std::env::var("XSEQ_UPDATE_FUZZ_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The four sequencing strategies, each derived against the corpus and
/// path table it will index (probability priorities hold table-specific
/// path ids and corpus-specific estimates).
fn strategy(kind: usize, docs: &[Document], paths: &mut PathTable) -> Strategy {
    match kind {
        0 => Strategy::DepthFirst,
        1 => Strategy::BreadthFirst,
        2 => Strategy::Random { seed: 0x5eed },
        _ => {
            let model = ProbabilityModel::estimate(docs, paths, 0);
            Strategy::Probability(model.priorities(paths, &WeightMap::default()))
        }
    }
}

/// Runs `qdoc` as a whole-document containment query against `index`.
fn containment_query(index: &XmlIndex, qdoc: &Document, paths: &PathTable) -> Vec<DocId> {
    match QuerySequence::from_document_readonly(qdoc, paths, index.strategy()) {
        Some(qs) => index.query_sequence(&qs).0,
        // A query path absent from the table is provably empty.
        None => Vec::new(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(fuzz_cases(6)))]

    /// Index level: *frozen ∪ delta − tombstones* answers and verifies
    /// exactly like a from-scratch rebuild over the survivors, for all four
    /// strategies at 1–4 threads.
    #[test]
    fn updates_match_from_scratch_rebuild(
        seed in 0u64..1_000,
        nbase in 1usize..10,
        nextra in 1usize..6,
        threads in 1usize..=4,
        max_fanout in 1u16..4,
        remove_bits in any::<u64>(),
    ) {
        let params = SyntheticParams {
            max_height: 4,
            max_fanout,
            value_pct: 25,
            identical_pct: 0,
            prob_floor_pct: 30,
        };
        let mut symbols = SymbolTable::with_value_mode(ValueMode::Intern);
        let total = nbase + nextra;
        let docs = SyntheticDataset::generate(&params, total, seed, &mut symbols).docs;
        let removed: Vec<bool> = (0..total).map(|i| (remove_bits >> (i % 64)) & 1 == 1).collect();
        for kind in 0..4 {
            // Live: base build, then delta inserts, then tombstones.
            let mut paths = PathTable::new();
            let strat = strategy(kind, &docs[..nbase], &mut paths);
            let mut live = XmlIndex::build_parallel(
                &docs[..nbase],
                &mut paths,
                strat,
                PlanOptions::default(),
                None,
                &Pool::new(threads),
            );
            for (i, d) in docs[nbase..].iter().enumerate() {
                live.insert_delta(d, (nbase + i) as DocId, &mut paths);
            }
            let mut rank: Vec<Option<DocId>> = vec![None; total];
            let mut surv_docs: Vec<Document> = Vec::new();
            for (id, doc) in docs.iter().enumerate() {
                if removed[id] {
                    live.remove_doc(id as DocId);
                } else {
                    rank[id] = Some(surv_docs.len() as DocId);
                    surv_docs.push(doc.clone());
                }
            }
            // Reference: from-scratch build over the survivors, with the
            // strategy re-derived over *them* (what a rebuild would do).
            let mut ref_paths = PathTable::new();
            let ref_strat = strategy(kind, &surv_docs, &mut ref_paths);
            let reference = XmlIndex::build(
                &surv_docs,
                &mut ref_paths,
                ref_strat,
                PlanOptions::default(),
            );
            // Every document — surviving, removed, delta-inserted — as a
            // containment query: answers must agree modulo id renumbering.
            for (qid, qdoc) in docs.iter().enumerate() {
                let live_hits = containment_query(&live, qdoc, &paths);
                let mapped: Vec<DocId> = live_hits
                    .iter()
                    .map(|d| {
                        rank[*d as usize]
                            .unwrap_or_else(|| panic!("live query returned tombstoned doc {d}"))
                    })
                    .collect();
                let ref_hits = containment_query(&reference, qdoc, &ref_paths);
                prop_assert_eq!(
                    mapped, ref_hits,
                    "strategy {} / {} threads / query doc {}", kind, threads, qid
                );
            }
            let live_report = live.verify_integrity(&mut paths);
            prop_assert!(live_report.is_clean(), "live: {}", live_report.render());
            let ref_report = reference.verify_integrity(&mut ref_paths);
            prop_assert!(ref_report.is_clean(), "reference: {}", ref_report.render());
        }
    }
}

/// Tiny deterministic generator for the database-level op stream.
fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(fuzz_cases(8)))]

    /// Database level: any insert/remove/compact interleaving, once
    /// compacted, is bit-identical to `build_from_xml` over the surviving
    /// XML strings — for both database sequencing modes at 1–4 threads.
    #[test]
    fn update_histories_compact_to_rebuild(
        seed in 0u64..1_000,
        ninitial in 1usize..6,
        npending in 1usize..8,
        nops in 1usize..16,
        threads in 1usize..=4,
    ) {
        let params = SyntheticParams {
            max_height: 4,
            max_fanout: 3,
            value_pct: 25,
            identical_pct: 0,
            prob_floor_pct: 30,
        };
        let mut symbols = SymbolTable::with_value_mode(ValueMode::Intern);
        let docs = SyntheticDataset::generate(&params, ninitial + npending, seed, &mut symbols).docs;
        let xmls: Vec<String> = docs.iter().map(|d| write_document(d, &symbols)).collect();
        for sequencing in [Sequencing::DepthFirst, Sequencing::Probability] {
            // shards(1): compact ≡ rebuild bit-identity is a single-shard
            // property — sharded histories live in integration_sharding.rs.
            let mut db = DatabaseBuilder::new()
                .sequencing(sequencing)
                .threads(threads)
                .shards(1)
                .build_from_xml(xmls[..ninitial].iter().map(String::as_str))
                .unwrap();
            // Model: current id order → (xml, alive).
            let mut model: Vec<(&str, bool)> =
                xmls[..ninitial].iter().map(|x| (x.as_str(), true)).collect();
            let mut pending = xmls[ninitial..].iter().map(String::as_str);
            let mut rng = seed ^ 0x9e3779b97f4a7c15;
            for _ in 0..nops {
                match lcg(&mut rng) % 10 {
                    0..=4 => {
                        if let Some(xml) = pending.next() {
                            let id = db.insert_document(xml).unwrap();
                            prop_assert_eq!(id as usize, model.len(), "ids stay dense");
                            model.push((xml, true));
                        }
                    }
                    5..=7 => {
                        let alive = model.iter().filter(|(_, a)| *a).count();
                        if alive > 1 {
                            let id = (lcg(&mut rng) as usize) % model.len();
                            let did = db.remove_document(id as DocId);
                            prop_assert_eq!(did, model[id].1, "remove reports liveness");
                            model[id].1 = false;
                        }
                    }
                    _ => {
                        db.compact();
                        model.retain(|(_, a)| *a);
                    }
                }
            }
            db.compact();
            model.retain(|(_, a)| *a);
            let survivors: Vec<&str> = model.iter().map(|(x, _)| *x).collect();
            let reference = DatabaseBuilder::new()
                .sequencing(sequencing)
                .build_from_xml(survivors.iter().copied())
                .unwrap();
            prop_assert!(
                db.index().trie().identical_to(reference.index().trie()),
                "{sequencing:?}: compacted trie diverges from rebuild"
            );
            prop_assert_eq!(db.index().data_paths(), reference.index().data_paths());
            prop_assert_eq!(db.corpus().paths.len(), reference.corpus().paths.len());
            prop_assert_eq!(
                db.corpus().symbols.designator_count(),
                reference.corpus().symbols.designator_count()
            );
            prop_assert_eq!(
                db.corpus().symbols.values.len(),
                reference.corpus().symbols.values.len()
            );
            for q in ["/e0", "//e1", "//e2", "/e0/e1", "/e0/e2", "//e4"] {
                prop_assert_eq!(
                    db.query_xpath(q).unwrap(),
                    reference.query_xpath(q).unwrap(),
                    "{:?}: {}", sequencing, q
                );
            }
            let mut db = db;
            let report = db.verify_integrity();
            prop_assert!(report.is_clean(), "{sequencing:?}: {}", report.render());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(fuzz_cases(6)))]

    /// Sharded database level: random insert/remove/merge histories run
    /// through the tiered path at 1/2/4 shards with aggressive tiering
    /// knobs (memtable cuts and tier merges fire inside even short
    /// histories), then one final `compact()`, must be bit-identical —
    /// per shard — to a bulk-built database that never saw the tiered
    /// path: build every document at once, replay the same removes,
    /// compact.  Ids stay dense insertion indices until the final
    /// compact, so both databases route every doc to the same shard and
    /// renumber identically; any trace the memtable, a tier-0 run, or a
    /// background merge leaves behind shows up as a trie divergence.
    /// (Mid-history compacts renumber ids and deliberately leave docs in
    /// their original shard, so cross-database placement only matches
    /// rebuild routing for never-renumbered histories; interleaved
    /// compacts are covered at shards(1) by
    /// `update_histories_compact_to_rebuild` above.)
    #[test]
    fn sharded_update_histories_compact_to_rebuild(
        seed in 0u64..1_000,
        ninitial in 1usize..6,
        npending in 1usize..8,
        nops in 1usize..16,
        threads in 1usize..=4,
        shards_sel in 0usize..3,
    ) {
        let shards = [1usize, 2, 4][shards_sel];
        let params = SyntheticParams {
            max_height: 4,
            max_fanout: 3,
            value_pct: 25,
            identical_pct: 0,
            prob_floor_pct: 30,
        };
        let mut symbols = SymbolTable::with_value_mode(ValueMode::Intern);
        let docs = SyntheticDataset::generate(&params, ninitial + npending, seed, &mut symbols).docs;
        let xmls: Vec<String> = docs.iter().map(|d| write_document(d, &symbols)).collect();
        for sequencing in [Sequencing::DepthFirst, Sequencing::Probability] {
            let mut db = DatabaseBuilder::new()
                .sequencing(sequencing)
                .threads(threads)
                .shards(shards)
                .memtable_limit(2)
                .tier_ratio(2)
                .build_from_xml(xmls[..ninitial].iter().map(String::as_str))
                .unwrap();
            // Model: insertion-order xml list + liveness; ids are dense
            // insertion indices for the whole (compact-free) history.
            let mut inserted: Vec<&str> =
                xmls[..ninitial].iter().map(String::as_str).collect();
            let mut alive: Vec<bool> = vec![true; ninitial];
            let mut pending = xmls[ninitial..].iter().map(String::as_str);
            let mut rng = seed ^ 0x517e5;
            for _ in 0..nops {
                match lcg(&mut rng) % 10 {
                    0..=4 => {
                        if let Some(xml) = pending.next() {
                            let id = db.insert_document(xml).unwrap();
                            prop_assert_eq!(id as usize, inserted.len(), "ids stay dense");
                            inserted.push(xml);
                            alive.push(true);
                        }
                    }
                    5..=7 => {
                        if alive.iter().filter(|a| **a).count() > 1 {
                            let id = (lcg(&mut rng) as usize) % inserted.len();
                            let did = db.remove_document(id as DocId);
                            prop_assert_eq!(did, alive[id], "remove reports liveness");
                            alive[id] = false;
                        }
                    }
                    _ => {
                        // Fold pending tier merges mid-history: merges
                        // must be invisible to everything checked below.
                        db.run_pending_merges();
                    }
                }
            }
            let report = db.compact();
            // Bulk-built twin: same docs, same dense ids (→ same shard
            // routing), same removes, one compact.
            let mut reference = DatabaseBuilder::new()
                .sequencing(sequencing)
                .shards(shards)
                .build_from_xml(inserted.iter().copied())
                .unwrap();
            for (id, live) in alive.iter().enumerate() {
                if !live {
                    prop_assert!(reference.remove_document(id as DocId));
                }
            }
            let ref_report = reference.compact();
            prop_assert_eq!(report.remap, ref_report.remap, "compaction remaps agree");
            for s in 0..shards {
                prop_assert!(
                    db.shard_index(s).trie().identical_to(reference.shard_index(s).trie()),
                    "{sequencing:?} s{shards}: shard {s} trie diverges from rebuild"
                );
            }
            for q in ["/e0", "//e1", "//e2", "/e0/e1", "/e0/e2", "//e4"] {
                prop_assert_eq!(
                    db.query_xpath(q).unwrap(),
                    reference.query_xpath(q).unwrap(),
                    "{:?} s{}: {}", sequencing, shards, q
                );
            }
            let report = db.verify_integrity();
            prop_assert!(report.is_clean(), "{sequencing:?} s{shards}: {}", report.render());
        }
    }
}

/// Snapshot consistency: `query_batch` fleets racing **background tier
/// merges** (ISSUE 10 satellite).
///
/// The database runs with aggressive tiering knobs and a 1 ms background
/// merge worker, so inserts never drain merges inline and the worker keeps
/// splicing runs while the reader fleet is in flight.  Epoch-stamped
/// snapshots make every merge invisible to answers: each fleet batch must
/// equal the serial pre-fleet answers, `verify_integrity` must pass on the
/// intermediate (mid-merge-history) segment sets, and the fully quiesced
/// database — pending merges drained — must agree once more.
#[test]
fn query_batch_fleets_agree_while_background_merges_race() {
    let params = SyntheticParams {
        max_height: 4,
        max_fanout: 3,
        value_pct: 25,
        identical_pct: 0,
        prob_floor_pct: 30,
    };
    let mut symbols = SymbolTable::with_value_mode(ValueMode::Intern);
    let docs = SyntheticDataset::generate(&params, 24, 0x71e2, &mut symbols).docs;
    let xmls: Vec<String> = docs.iter().map(|d| write_document(d, &symbols)).collect();
    let exprs = ["/e0", "//e1", "//e2", "/e0/e1", "/e0/e2", "//e3"];
    let mut db = DatabaseBuilder::new()
        .threads(4)
        .memtable_limit(2)
        .tier_ratio(2)
        .background_merge(std::time::Duration::from_millis(1))
        .build_from_xml(xmls[..4].iter().map(String::as_str))
        .expect("initial corpus parses");
    assert!(db.has_background_merge(), "worker is wired");
    let mut next_victim: DocId = 0;
    for round in 0..4 {
        // A burst of inserts piles up tier-0 runs faster than the worker
        // folds them; a remove keeps tombstone resolution in the race.
        for xml in &xmls[4 + round * 5..4 + (round + 1) * 5] {
            db.insert_document(xml).expect("pending document parses");
        }
        db.remove_document(next_victim);
        next_victim += 1;
        let expected: Vec<Vec<DocId>> = exprs
            .iter()
            .map(|e| db.query_xpath(e).expect("query parses"))
            .collect();
        // Reader fleet: 4 threads × repeated batches, racing the merge
        // worker's splices.  Every batch must see exactly `expected`.
        std::thread::scope(|s| {
            let readers: Vec<_> = (0..4)
                .map(|_| {
                    s.spawn(|| {
                        let mut batches = Vec::new();
                        for _ in 0..8 {
                            batches.push(db.query_batch(&exprs));
                        }
                        batches
                    })
                })
                .collect();
            for reader in readers {
                for batch in reader.join().expect("reader thread") {
                    let got: Vec<Vec<DocId>> = batch
                        .into_iter()
                        .map(|r| r.expect("query parses"))
                        .collect();
                    assert_eq!(got, expected, "reader diverged in round {round}");
                }
            }
        });
        // Integrity of the intermediate segment set, whatever merge state
        // the worker left it in.
        let report = db.verify_integrity();
        assert!(report.is_clean(), "round {round}: {}", report.render());
    }
    // Quiesce: drain the merge debt and re-check — folding runs must not
    // change a single answer.
    let expected: Vec<Vec<DocId>> = exprs
        .iter()
        .map(|e| db.query_xpath(e).expect("query parses"))
        .collect();
    db.run_pending_merges();
    let quiesced: Vec<Vec<DocId>> = exprs
        .iter()
        .map(|e| db.query_xpath(e).expect("query parses"))
        .collect();
    assert_eq!(quiesced, expected, "drained merges changed answers");
    let report = db.verify_integrity();
    assert!(report.is_clean(), "quiesced: {}", report.render());
}

/// Concurrent readers vs. updates: `query_batch` racing the update path.
///
/// Rust's borrow rules make a *torn* read statically impossible —
/// `insert_document`/`compact` take `&mut Database`, so readers only ever
/// hold a reference to a fully pre- or fully post-update database (the
/// logical interleavings of the delta structures themselves are model
/// checked exhaustively in `xseq_index::check_updates`).  What this test
/// pins is the epoch contract that rests on that: after *every* update
/// step, a fleet of scoped-thread readers issuing `query_batch` (itself
/// fanning out on the pool) all agree exactly with a serial query loop
/// over the post-update state — no reader observes a stale delta, a
/// dropped tombstone, or a half-compacted trie.
#[test]
fn concurrent_query_batches_agree_with_every_update_epoch() {
    let params = SyntheticParams {
        max_height: 4,
        max_fanout: 3,
        value_pct: 25,
        identical_pct: 0,
        prob_floor_pct: 30,
    };
    let mut symbols = SymbolTable::with_value_mode(ValueMode::Intern);
    let docs = SyntheticDataset::generate(&params, 10, 0xeb0c, &mut symbols).docs;
    let xmls: Vec<String> = docs.iter().map(|d| write_document(d, &symbols)).collect();
    let exprs = ["/e0", "//e1", "//e2", "/e0/e1", "/e0/e2", "//e3"];
    let mut db = DatabaseBuilder::new()
        .threads(4)
        .build_from_xml(xmls[..4].iter().map(String::as_str))
        .expect("initial corpus parses");
    let mut pending = xmls[4..].iter();
    // insert ×2, remove, insert, compact, insert, remove, compact.
    let steps: [&str; 8] = [
        "insert", "insert", "remove", "insert", "compact", "insert", "remove", "compact",
    ];
    let mut next_victim: DocId = 0;
    for step in steps {
        match step {
            "insert" => {
                let xml = pending.next().expect("enough pending documents");
                db.insert_document(xml).expect("pending document parses");
            }
            "remove" => {
                db.remove_document(next_victim);
                next_victim += 1;
            }
            _ => {
                db.compact();
                next_victim = 0;
            }
        }
        let expected: Vec<Vec<DocId>> = exprs
            .iter()
            .map(|e| db.query_xpath(e).expect("query parses"))
            .collect();
        std::thread::scope(|s| {
            let readers: Vec<_> = (0..4).map(|_| s.spawn(|| db.query_batch(&exprs))).collect();
            for reader in readers {
                let got: Vec<Vec<DocId>> = reader
                    .join()
                    .expect("reader thread")
                    .into_iter()
                    .map(|r| r.expect("query parses"))
                    .collect();
                assert_eq!(got, expected, "reader diverged after step {step:?}");
            }
        });
    }
}
