//! Full-stack query equivalence: generated corpora, XPath front end,
//! both sequencing strategies, checked against the brute-force oracle.

use rand::rngs::StdRng;
use rand::SeedableRng;
use xseq::datagen::{
    random_query_tree, SyntheticDataset, SyntheticParams, XmarkGenerator, XmarkOptions,
};
use xseq::xml::matcher::structure_match;
use xseq::{
    parse_xpath, Axis, Corpus, DatabaseBuilder, Document, PatternLabel, Sequencing, TreePattern,
    ValueMode,
};

fn oracle(pattern: &TreePattern, docs: &[Document]) -> Vec<u32> {
    docs.iter()
        .enumerate()
        .filter(|(_, d)| structure_match(pattern, d))
        .map(|(i, _)| i as u32)
        .collect()
}

/// Turns a sampled subtree into an exact child-axis pattern.
fn pattern_of(doc: &Document) -> TreePattern {
    let root = doc.root().expect("non-empty");
    let label = |d: &Document, n: u32| match (d.sym(n).as_elem(), d.sym(n).as_value()) {
        (Some(e), _) => PatternLabel::Elem(e),
        (_, Some(v)) => PatternLabel::Value(v),
        _ => unreachable!(),
    };
    let mut q = TreePattern::root(label(doc, root));
    let mut map = vec![0u32; doc.len()];
    for n in doc.preorder() {
        if n == root {
            continue;
        }
        let p = doc.parent(n).expect("non-root");
        map[n as usize] = q.add(map[p as usize], Axis::Child, label(doc, n));
    }
    q
}

#[test]
fn synthetic_corpus_random_queries_match_oracle() {
    let params = SyntheticParams {
        max_height: 4,
        max_fanout: 3,
        value_pct: 25,
        identical_pct: 30,
        prob_floor_pct: 30,
    };
    for sequencing in [Sequencing::DepthFirst, Sequencing::Probability] {
        let mut corpus = Corpus::new(ValueMode::Intern);
        let ds = SyntheticDataset::generate(&params, 120, 17, &mut corpus.symbols);
        corpus.docs = ds.docs;
        let docs_copy = corpus.docs.clone();
        let db = DatabaseBuilder::new()
            .sequencing(sequencing)
            .build_from_corpus(corpus)
            .unwrap();

        let mut rng = StdRng::seed_from_u64(5);
        for i in 0..60 {
            let src = &docs_copy[i % docs_copy.len()];
            let q = pattern_of(&random_query_tree(src, 2 + i % 5, &mut rng));
            let got = db.query_pattern(&q).docs;
            let expect = oracle(&q, &docs_copy);
            assert_eq!(got, expect, "{sequencing:?} query #{i}");
            assert!(
                got.contains(&((i % docs_copy.len()) as u32)),
                "source doc matches itself"
            );
        }
    }
}

#[test]
fn xmark_corpus_xpath_queries_match_oracle() {
    let mut corpus = Corpus::new(ValueMode::Intern);
    corpus.docs =
        XmarkGenerator::new(23, XmarkOptions::default()).generate(300, &mut corpus.symbols);
    let docs_copy = corpus.docs.clone();
    let mut db = DatabaseBuilder::new()
        .sequencing(Sequencing::Probability)
        .build_from_corpus(corpus)
        .unwrap();

    let queries = [
        "/site/item",
        "/site//location[text='United States']",
        "//person/profile/interest",
        "//item[location='Germany']/mailbox/mail",
        "/site/open_auction[bidder/increase='5.00']",
        "//closed_auction[seller][buyer]",
        "/site/*/age",
        "//bidder[date][personref]",
    ];
    for expr in queries {
        let pattern = parse_xpath(expr, &mut db.corpus_mut().symbols).unwrap();
        let got = db.query_pattern(&pattern).docs;
        let expect = oracle(&pattern, &docs_copy);
        assert_eq!(got, expect, "{expr}");
    }
}

#[test]
fn strategies_agree_with_each_other() {
    let params = SyntheticParams {
        max_height: 3,
        max_fanout: 4,
        value_pct: 30,
        identical_pct: 50,
        prob_floor_pct: 40,
    };
    let mut c1 = Corpus::new(ValueMode::Intern);
    let ds = SyntheticDataset::generate(&params, 150, 99, &mut c1.symbols);
    c1.docs = ds.docs.clone();
    let mut c2 = Corpus::new(ValueMode::Intern);
    let _ds2 = SyntheticDataset::generate(&params, 150, 99, &mut c2.symbols);
    c2.docs = ds.docs;

    let df = DatabaseBuilder::new()
        .sequencing(Sequencing::DepthFirst)
        .build_from_corpus(c1)
        .unwrap();
    let cs = DatabaseBuilder::new()
        .sequencing(Sequencing::Probability)
        .build_from_corpus(c2)
        .unwrap();

    let mut rng = StdRng::seed_from_u64(31);
    let docs = df.corpus().docs.clone();
    for i in 0..40 {
        let src = &docs[(i * 7) % docs.len()];
        let qt = random_query_tree(src, 2 + i % 6, &mut rng);
        let q1 = pattern_of(&qt);
        let a = df.query_pattern(&q1).docs;
        let b = cs.query_pattern(&q1).docs;
        assert_eq!(a, b, "query #{i}");
    }
}
