//! End-to-end pipeline: XML text → parser → database → XPath queries →
//! dynamic insert → serialization round trip.

use xseq::xml::write_document;
use xseq::{DatabaseBuilder, Error, Sequencing, ValueMode};

const PROJECTS: &[&str] = &[
    r#"<project><research><manager>tom</manager><location>newyork</location></research>
        <develop><manager>johnson</manager><location>boston</location></develop></project>"#,
    r#"<project><develop><unit><manager>mary</manager><name>GUI</name></unit>
        <unit><name>engine</name></unit><location>boston</location></develop></project>"#,
    r#"<project><research><location>boston</location></research></project>"#,
];

#[test]
fn xpath_queries_over_parsed_documents() {
    let db = DatabaseBuilder::new()
        .sequencing(Sequencing::Probability)
        .build_from_xml(PROJECTS.iter().copied())
        .unwrap();

    // Section 3.1's query shape
    assert_eq!(
        db.query_xpath("/project[research[location='newyork']]/develop[location='boston']")
            .unwrap(),
        vec![0]
    );
    assert_eq!(
        db.query_xpath("//location[text='boston']").unwrap(),
        vec![0, 1, 2]
    );
    assert_eq!(
        db.query_xpath("/project/develop/unit/name").unwrap(),
        vec![1]
    );
    // Figure 4 semantics: manager and name under the SAME unit
    assert_eq!(db.query_xpath("//unit[manager][name]").unwrap(), vec![1]);
    // wildcard: one level only — doc 1's manager sits under unit, two
    // levels below develop, so only doc 0 matches
    assert_eq!(db.query_xpath("/project/*/manager").unwrap(), vec![0]);
    assert_eq!(db.query_xpath("/project//manager").unwrap(), vec![0, 1]);
    // no match
    assert!(db.query_xpath("/project/qa").unwrap().is_empty());
}

#[test]
fn insert_refreshes_index() {
    let mut db = DatabaseBuilder::new()
        .build_from_xml(PROJECTS.iter().copied())
        .unwrap();
    assert!(db
        .query_xpath("//location[text='tokyo']")
        .unwrap()
        .is_empty());
    let id = db
        .insert_xml("<project><research><location>tokyo</location></research></project>")
        .unwrap();
    assert_eq!(
        db.query_xpath("//location[text='tokyo']").unwrap(),
        vec![id]
    );
    // older queries still work
    assert_eq!(db.query_xpath("//unit[manager][name]").unwrap(), vec![1]);
}

#[test]
fn serialization_round_trip_preserves_answers() {
    let db = DatabaseBuilder::new()
        .build_from_xml(PROJECTS.iter().copied())
        .unwrap();
    // write out, re-parse, rebuild: same answers
    let texts: Vec<String> = db
        .corpus()
        .docs
        .iter()
        .map(|d| write_document(d, &db.corpus().symbols))
        .collect();
    let db2 = DatabaseBuilder::new()
        .build_from_xml(texts.iter().map(String::as_str))
        .unwrap();
    for q in [
        "//location[text='boston']",
        "//unit[manager][name]",
        "/project/*/manager",
    ] {
        assert_eq!(
            db.query_xpath(q).unwrap(),
            db2.query_xpath(q).unwrap(),
            "{q}"
        );
    }
}

#[test]
fn hashed_values_still_answer_queries() {
    // ViST's hashed value designators: collisions possible, containment of
    // true answers guaranteed.
    let db = DatabaseBuilder::new()
        .value_mode(ValueMode::Hashed { range: 1000 })
        .build_from_xml(PROJECTS.iter().copied())
        .unwrap();
    let hits = db.query_xpath("//location[text='newyork']").unwrap();
    assert!(hits.contains(&0));
}

#[test]
fn error_paths_are_reported() {
    assert!(matches!(
        DatabaseBuilder::new().build_from_xml(["<oops>"]),
        Err(Error::Xml(_))
    ));
    let db = DatabaseBuilder::new().build_from_xml(["<a/>"]).unwrap();
    assert!(matches!(db.query_xpath("not-a-path"), Err(Error::Query(_))));
}
