//! Cross-engine agreement: the path index, node index, ViST baseline and
//! the constraint-sequence index answer every query identically over a
//! DBLP-shaped corpus — including the paper's Table 8 queries.

use rand::rngs::StdRng;
use rand::SeedableRng;
use xseq::baselines::{NodeIndex, PathIndex, VistIndex};
use xseq::datagen::{queries, random_query_tree, DblpGenerator};
use xseq::index::XmlIndex;
use xseq::schema::{ProbabilityModel, WeightMap};
use xseq::sequence::Strategy;
use xseq::xml::matcher::structure_match;
use xseq::{
    parse_xpath, Axis, Corpus, Document, PatternLabel, PlanOptions, TreePattern, ValueMode,
};

fn pattern_of(doc: &Document) -> TreePattern {
    let root = doc.root().expect("non-empty");
    let label = |d: &Document, n: u32| match (d.sym(n).as_elem(), d.sym(n).as_value()) {
        (Some(e), _) => PatternLabel::Elem(e),
        (_, Some(v)) => PatternLabel::Value(v),
        _ => unreachable!(),
    };
    let mut q = TreePattern::root(label(doc, root));
    let mut map = vec![0u32; doc.len()];
    for n in doc.preorder() {
        if n == root {
            continue;
        }
        let p = doc.parent(n).expect("non-root");
        map[n as usize] = q.add(map[p as usize], Axis::Child, label(doc, n));
    }
    q
}

#[test]
fn four_engines_agree_on_dblp() {
    let mut corpus = Corpus::new(ValueMode::Intern);
    corpus.docs = DblpGenerator::new(12).generate(800, &mut corpus.symbols);

    let path_idx = PathIndex::build(&corpus.docs, &mut corpus.paths);
    let node_idx = NodeIndex::build(&corpus.docs);
    let vist = VistIndex::build(&corpus.docs, &mut corpus.paths);
    let model = ProbabilityModel::estimate(&corpus.docs, &mut corpus.paths, 0);
    let strategy = Strategy::Probability(model.priorities(&corpus.paths, &WeightMap::default()));
    let cs = XmlIndex::build(
        &corpus.docs,
        &mut corpus.paths,
        strategy,
        PlanOptions::default(),
    );

    // the paper's Table 8 queries
    let mut patterns: Vec<(String, TreePattern)> = Vec::new();
    for (name, expr) in queries::DBLP_QUERIES {
        let p = parse_xpath(expr, &mut corpus.symbols).unwrap();
        patterns.push((format!("{name}: {expr}"), p));
    }
    // plus random exact patterns from the data
    let mut rng = StdRng::seed_from_u64(2);
    for i in 0..30 {
        let src = corpus.docs[(i * 17) % corpus.docs.len()].clone();
        let q = pattern_of(&random_query_tree(&src, 2 + i % 5, &mut rng));
        patterns.push((format!("random #{i}"), q));
    }

    for (name, q) in &patterns {
        let oracle: Vec<u32> = corpus
            .docs
            .iter()
            .enumerate()
            .filter(|(_, d)| structure_match(q, d))
            .map(|(i, _)| i as u32)
            .collect();
        let (a, _) = path_idx.query(q, &corpus.docs, &corpus.paths);
        let (b, _) = node_idx.query(q, &corpus.docs);
        let (c, _) = vist.query(q, &corpus.docs, &mut corpus.paths);
        let d = cs.query(q, &corpus.paths).docs;
        assert_eq!(a, oracle, "path index disagrees on {name}");
        assert_eq!(b, oracle, "node index disagrees on {name}");
        assert_eq!(c, oracle, "vist disagrees on {name}");
        assert_eq!(d, oracle, "cs disagrees on {name}");
    }
}

#[test]
fn table8_queries_have_sensible_selectivities() {
    let mut corpus = Corpus::new(ValueMode::Intern);
    corpus.docs = DblpGenerator::new(5).generate(3000, &mut corpus.symbols);
    let model = ProbabilityModel::estimate(&corpus.docs, &mut corpus.paths, 0);
    let strategy = Strategy::Probability(model.priorities(&corpus.paths, &WeightMap::default()));
    let cs = XmlIndex::build(
        &corpus.docs,
        &mut corpus.paths,
        strategy,
        PlanOptions::default(),
    );
    // Q1 is broad (every inproceedings has a title); Q2 is narrow
    let q1 = parse_xpath(queries::DBLP_Q1, &mut corpus.symbols).unwrap();
    let q2 = parse_xpath(queries::DBLP_Q2, &mut corpus.symbols).unwrap();
    let q4 = parse_xpath(queries::DBLP_Q4, &mut corpus.symbols).unwrap();
    let r1 = cs.query(&q1, &corpus.paths).docs.len();
    let r2 = cs.query(&q2, &corpus.paths).docs.len();
    let r4 = cs.query(&q4, &corpus.paths).docs.len();
    assert!(r1 > 1000, "Q1 is broad, got {r1}");
    assert!(r2 < 50, "Q2 is selective, got {r2}");
    assert!(r4 > 0, "David authors exist, got {r4}");
}
