//! Validates the `HeapSize` memory model against the allocator itself.
//!
//! The `memory.*` gauges ([`Database::stats`]) report *modelled* bytes —
//! capacity-based accounting over every component.  This binary swaps in a
//! counting global allocator and checks that the model agrees with the
//! live-byte delta of actually building a corpus and index, within 5%.
//!
//! It is a separate integration-test binary on purpose: a process-wide
//! allocator counter cannot tolerate unrelated tests allocating in
//! parallel, and the library crates `forbid(unsafe_code)` (the counter
//! needs two `unsafe impl` trampolines around `System`).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use xseq::datagen::dblp::DblpGenerator;
use xseq::{Corpus, HeapSize, PlanOptions, Strategy, ValueMode, XmlIndex};

/// Bytes currently live (allocated minus deallocated).
static LIVE: AtomicUsize = AtomicUsize::new(0);

struct CountingAlloc;

// SAFETY: every method delegates straight to `System` and only adjusts a
// counter, so the allocator contract (layout fidelity, uniqueness of
// returned pointers) is exactly `System`'s.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // SAFETY: forwarded verbatim; caller upholds the layout contract.
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            LIVE.fetch_add(layout.size(), Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
        // SAFETY: forwarded verbatim; `ptr` came from this allocator.
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        // SAFETY: forwarded verbatim; caller upholds the layout contract.
        let p = unsafe { System.alloc_zeroed(layout) };
        if !p.is_null() {
            LIVE.fetch_add(layout.size(), Ordering::Relaxed);
        }
        p
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // SAFETY: forwarded verbatim; `ptr` came from this allocator and
        // the caller upholds the resize contract.
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            LIVE.fetch_add(new_size, Ordering::Relaxed);
            LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
        }
        p
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn live() -> usize {
    LIVE.load(Ordering::Relaxed)
}

/// Builds the same corpus + index the model will be asked to attribute.
fn build(docs: usize, seed: u64) -> (Corpus, XmlIndex) {
    let mut corpus = Corpus::new(ValueMode::Intern);
    let mut generator = DblpGenerator::new(seed);
    corpus.docs = generator.generate(docs, &mut corpus.symbols);
    let index = XmlIndex::build(
        &corpus.docs,
        &mut corpus.paths,
        Strategy::DepthFirst,
        PlanOptions::default(),
    );
    (corpus, index)
}

#[test]
fn modelled_bytes_match_the_allocator_within_5_percent() {
    // Warm up once so lazy one-time allocations (thread-locals, rng
    // tables) are live before the measured window opens.
    drop(build(8, 1));

    let before = live();
    let (corpus, index) = build(300, 42);
    let after = live();
    let measured = after - before;
    let modelled = corpus.heap_bytes() + index.heap_bytes();

    // keep the structures alive across the `after` reading
    assert!(corpus.len() == 300 && index.trie().node_count() > 0);

    let ratio = modelled as f64 / measured as f64;
    assert!(
        (0.95..=1.05).contains(&ratio),
        "model {modelled} B vs allocator {measured} B (ratio {ratio:.4})"
    );
}
