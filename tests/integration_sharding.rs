//! Differential sharding tests: **shard-merge ≡ sequential** (ISSUE 9).
//!
//! A hash-partitioned database is an implementation detail the query
//! surface must not leak: for every shard count N and thread count, the
//! documents a query matches, the aggregate statistics, and the integrity
//! verdicts must be exactly what the historical single-shard build over
//! the same corpus produces.  These tests pin that contract across
//!
//! * **builds** — random synthetic corpora at 1/2/4/8 shards × 1–4
//!   threads × both sequencing strategies;
//! * **update histories** — random insert/remove/compact interleavings
//!   applied in lockstep to a sharded and a single-shard database
//!   (global ids, compaction remaps and answers must stay identical);
//! * **per-shard compaction** — independently scheduled `compact_shard`
//!   calls, validated against a from-scratch rebuild over the survivors;
//! * **`query_batch` fleets** — batch answers against the serial loop.
//!
//! The CI update-fuzz smoke job shrinks the case budget through
//! `XSEQ_UPDATE_FUZZ_CASES`; locally the defaults below run.

use proptest::prelude::*;
use xseq::datagen::{SyntheticDataset, SyntheticParams};
use xseq::{DatabaseBuilder, DocId, Error, Sequencing};

/// Case budget, shrinkable by the CI smoke job via `XSEQ_UPDATE_FUZZ_CASES`.
fn fuzz_cases(default: u32) -> u32 {
    std::env::var("XSEQ_UPDATE_FUZZ_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn params() -> SyntheticParams {
    SyntheticParams {
        max_height: 4,
        max_fanout: 3,
        value_pct: 25,
        identical_pct: 0,
        prob_floor_pct: 30,
    }
}

/// Queries over the synthetic `e{k}` element vocabulary: rooted, `//`,
/// multi-step, and one that is provably empty on most corpora.
const QUERIES: [&str; 7] = ["/e0", "//e1", "//e2", "/e0/e1", "/e0/e2", "//e4", "//e9"];

const SHARDED: [usize; 3] = [2, 4, 8];

fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(fuzz_cases(6)))]

    /// Build equivalence: an N-shard build answers every query exactly
    /// like the 1-shard build, agrees on document/sequence totals, and
    /// verifies clean — for both strategies at 1–4 threads.
    #[test]
    fn sharded_builds_answer_like_single_shard(
        seed in 0u64..1_000,
        ndocs in 1usize..20,
        threads in 1usize..=4,
    ) {
        let xmls = SyntheticDataset::generate_xml(&params(), ndocs, seed);
        for sequencing in [Sequencing::DepthFirst, Sequencing::Probability] {
            let mut reference = DatabaseBuilder::new()
                .sequencing(sequencing)
                .shards(1)
                .build_from_xml(xmls.iter().map(String::as_str))
                .unwrap();
            let expected: Vec<Vec<DocId>> = QUERIES
                .iter()
                .map(|q| reference.query_xpath(q).unwrap())
                .collect();
            let ref_stats = reference.stats();
            prop_assert!(reference.verify_integrity().is_clean());
            for shards in SHARDED {
                let mut db = DatabaseBuilder::new()
                    .sequencing(sequencing)
                    .threads(threads)
                    .shards(shards)
                    .build_from_xml(xmls.iter().map(String::as_str))
                    .unwrap();
                prop_assert_eq!(db.shard_count(), shards);
                prop_assert_eq!(db.len(), reference.len());
                for (q, want) in QUERIES.iter().zip(&expected) {
                    prop_assert_eq!(
                        &db.query_xpath(q).unwrap(), want,
                        "{:?} s{} t{}: {}", sequencing, shards, threads, q
                    );
                }
                let stats = db.stats();
                prop_assert_eq!(stats.docs, ref_stats.docs);
                prop_assert_eq!(
                    stats.index.frozen.sequences + stats.index.delta.sequences,
                    ref_stats.index.frozen.sequences + ref_stats.index.delta.sequences,
                    "{:?} s{}: sequence totals", sequencing, shards
                );
                prop_assert_eq!(stats.index.tombstones, ref_stats.index.tombstones);
                prop_assert_eq!(stats.shards.len(), shards);
                prop_assert_eq!(
                    stats.shards.iter().map(|s| s.docs).sum::<usize>(),
                    ndocs,
                    "shards partition the corpus"
                );
                let report = db.verify_integrity();
                prop_assert!(
                    report.is_clean(),
                    "{:?} s{} t{}: {}", sequencing, shards, threads, report.render()
                );
            }
        }
    }

    /// Update-history equivalence, in lockstep: the same random
    /// insert/remove/compact sequence applied to an N-shard and a 1-shard
    /// database mints the same global ids, returns the same compaction
    /// remaps, and answers every query identically after every step.
    #[test]
    fn sharded_update_histories_match_single_shard(
        seed in 0u64..1_000,
        ninitial in 1usize..5,
        npending in 1usize..8,
        nops in 1usize..14,
        threads in 1usize..=4,
    ) {
        let xmls = SyntheticDataset::generate_xml(&params(), ninitial + npending, seed);
        for sequencing in [Sequencing::DepthFirst, Sequencing::Probability] {
            for shards in SHARDED {
                let build = |n: usize| {
                    DatabaseBuilder::new()
                        .sequencing(sequencing)
                        .threads(threads)
                        .shards(n)
                        .build_from_xml(xmls[..ninitial].iter().map(String::as_str))
                        .unwrap()
                };
                let mut db = build(shards);
                let mut reference = build(1);
                let mut len = ninitial;
                let mut pending = xmls[ninitial..].iter();
                let mut rng = seed ^ 0x9e3779b97f4a7c15;
                for _ in 0..nops {
                    match lcg(&mut rng) % 10 {
                        0..=4 => {
                            if let Some(xml) = pending.next() {
                                let a = db.insert_document(xml).unwrap();
                                let b = reference.insert_document(xml).unwrap();
                                prop_assert_eq!(a, b, "insert ids agree");
                                len = db.len();
                            }
                        }
                        5..=7 => {
                            let id = (lcg(&mut rng) as usize % len) as DocId;
                            prop_assert_eq!(
                                db.remove_document(id),
                                reference.remove_document(id),
                                "remove verdicts agree"
                            );
                        }
                        _ => {
                            let a = db.compact();
                            let b = reference.compact();
                            prop_assert_eq!(a.docs_after, b.docs_after);
                            prop_assert_eq!(a.tombstones_dropped, b.tombstones_dropped);
                            prop_assert_eq!(a.delta_merged, b.delta_merged);
                            prop_assert_eq!(a.remap, b.remap, "compaction remaps agree");
                            len = db.len();
                        }
                    }
                    for q in QUERIES {
                        prop_assert_eq!(
                            db.query_xpath(q).unwrap(),
                            reference.query_xpath(q).unwrap(),
                            "{:?} s{} t{}: {}", sequencing, shards, threads, q
                        );
                    }
                }
                prop_assert_eq!(db.len(), reference.len());
                prop_assert_eq!(db.stats().docs, reference.stats().docs);
                prop_assert!(db.verify_integrity().is_clean());
                prop_assert!(reference.verify_integrity().is_clean());
            }
        }
    }

    /// Per-shard compaction: independently scheduled `compact_shard`
    /// calls keep global ids dense and answers equal to a from-scratch
    /// single-shard build over the surviving documents.
    #[test]
    fn per_shard_compaction_matches_rebuild_over_survivors(
        seed in 0u64..1_000,
        ninitial in 2usize..6,
        npending in 1usize..6,
        nops in 1usize..12,
        shard_pick in 0usize..SHARDED.len(),
    ) {
        let shards = SHARDED[shard_pick];
        let xmls = SyntheticDataset::generate_xml(&params(), ninitial + npending, seed);
        let mut db = DatabaseBuilder::new()
            .sequencing(Sequencing::DepthFirst)
            .shards(shards)
            .build_from_xml(xmls[..ninitial].iter().map(String::as_str))
            .unwrap();
        // Model: global id → xml, pruned/renumbered through every remap.
        let mut model: Vec<&str> = xmls[..ninitial].iter().map(String::as_str).collect();
        let mut alive: Vec<bool> = vec![true; ninitial];
        let mut pending = xmls[ninitial..].iter();
        let mut rng = seed ^ 0x51a4d;
        for _ in 0..nops {
            match lcg(&mut rng) % 10 {
                0..=3 => {
                    if let Some(xml) = pending.next() {
                        let id = db.insert_document(xml).unwrap() as usize;
                        prop_assert_eq!(id, model.len(), "ids stay dense");
                        model.push(xml);
                        alive.push(true);
                    }
                }
                4..=6 => {
                    let id = lcg(&mut rng) as usize % model.len();
                    let did = db.remove_document(id as DocId);
                    prop_assert_eq!(did, alive[id], "remove reports liveness");
                    alive[id] = false;
                }
                _ => {
                    let s = lcg(&mut rng) as usize % shards;
                    let report = db.compact_shard(s);
                    // Renumber the model through the returned remap: a
                    // dropped id must be a tombstoned doc of shard s.
                    let mut next_model = Vec::with_capacity(model.len());
                    let mut next_alive = Vec::with_capacity(alive.len());
                    for (g, new) in report.remap.iter().enumerate() {
                        match new {
                            Some(n) => {
                                prop_assert_eq!(*n as usize, next_model.len());
                                next_model.push(model[g]);
                                next_alive.push(alive[g]);
                            }
                            None => prop_assert!(!alive[g], "only dead docs drop"),
                        }
                    }
                    model = next_model;
                    alive = next_alive;
                }
            }
            prop_assert_eq!(db.len(), model.len());
        }
        // Final full compaction, then compare with a fresh single-shard
        // build over the survivors in surviving-id order.
        let report = db.compact();
        let mut survivors = Vec::new();
        for (g, new) in report.remap.iter().enumerate() {
            if new.is_some() {
                survivors.push(model[g]);
            }
        }
        let reference = DatabaseBuilder::new()
            .sequencing(Sequencing::DepthFirst)
            .shards(1)
            .build_from_xml(survivors.iter().copied())
            .unwrap();
        prop_assert_eq!(db.len(), reference.len());
        for q in QUERIES {
            prop_assert_eq!(
                db.query_xpath(q).unwrap(),
                reference.query_xpath(q).unwrap(),
                "s{} after per-shard compaction: {}", shards, q
            );
        }
        prop_assert!(db.verify_integrity().is_clean());
    }

    /// `query_batch` fleets over sharded databases: batch answers equal
    /// the serial loop, including provably-empty and syntax-error cases.
    #[test]
    fn sharded_query_batch_equals_serial_loop(
        seed in 0u64..1_000,
        ndocs in 1usize..16,
        threads in 1usize..=4,
    ) {
        let xmls = SyntheticDataset::generate_xml(&params(), ndocs, seed);
        let mut exprs: Vec<&str> = QUERIES.to_vec();
        exprs.push("/nosuchelement/anywhere");
        exprs.push("not an xpath");
        for shards in SHARDED {
            let db = DatabaseBuilder::new()
                .threads(threads)
                .shards(shards)
                .build_from_xml(xmls.iter().map(String::as_str))
                .unwrap();
            let batch = db.query_batch(&exprs);
            prop_assert_eq!(batch.len(), exprs.len());
            for (expr, got) in exprs.iter().zip(&batch) {
                prop_assert_eq!(got, &db.query_xpath(expr), "s{}: {}", shards, expr);
            }
            prop_assert_eq!(&batch[exprs.len() - 2], &Ok(Vec::new()), "unknown symbol");
            prop_assert!(matches!(batch[exprs.len() - 1], Err(Error::Query(_))));
        }
    }
}

/// More shards than documents: the surplus shards hold empty corpora and
/// empty tries, queries still answer, and inserts can land on a
/// previously empty shard.
#[test]
fn empty_shards_are_inert() {
    let mut db = DatabaseBuilder::new()
        .shards(8)
        .build_from_xml(["<a><b>x</b></a>", "<a><c/></a>"])
        .unwrap();
    assert_eq!(db.shard_count(), 8);
    assert_eq!(db.len(), 2);
    assert_eq!(db.query_xpath("//a").unwrap(), vec![0, 1]);
    assert_eq!(db.query_xpath("/a/b[text='x']").unwrap(), vec![0]);
    // Route a few inserts around the ring; every doc stays queryable.
    for i in 0..8 {
        let xml = format!("<a><d{i}/></a>");
        let id = db.insert_document(&xml).unwrap();
        assert_eq!(id as usize, 2 + i);
    }
    assert_eq!(db.len(), 10);
    assert_eq!(db.query_xpath("//a").unwrap(), (0..10).collect::<Vec<_>>());
    assert_eq!(db.query_xpath("/a/d3").unwrap(), vec![5]);
    let report = db.verify_integrity();
    assert!(report.is_clean(), "{}", report.render());
    let report = db.compact();
    assert_eq!(report.docs_after, 10);
    assert_eq!(db.query_xpath("/a/d7").unwrap(), vec![9]);
}

/// The scatter path and the sequential fallback agree: the same sharded
/// database queried with a parallel pool and with one thread returns
/// identical answers.
#[test]
fn scatter_and_sequential_gather_agree() {
    let xmls = SyntheticDataset::generate_xml(&params(), 12, 7);
    let parallel = DatabaseBuilder::new()
        .threads(4)
        .shards(4)
        .build_from_xml(xmls.iter().map(String::as_str))
        .unwrap();
    let sequential = DatabaseBuilder::new()
        .threads(1)
        .shards(4)
        .build_from_xml(xmls.iter().map(String::as_str))
        .unwrap();
    for q in QUERIES {
        assert_eq!(
            parallel.query_xpath(q).unwrap(),
            sequential.query_xpath(q).unwrap(),
            "{q}"
        );
    }
}
