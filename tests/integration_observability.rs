//! Integration tests for the observability stack: the flight recorder on
//! the database lifecycle, the runtime-tunable slow-query threshold, the
//! online anomaly detector against a deterministically injected latency
//! spike, the continuous phase profiler, and the one-command diagnostics
//! bundle.

use std::time::Duration;
use xseq::{AnomalyDetector, AnomalyKind, DatabaseBuilder, Severity, SloPolicy, TraceConfig};

fn small_db() -> xseq::Database {
    DatabaseBuilder::new()
        .build_from_xml([
            "<project><research><loc>newyork</loc></research></project>",
            "<project><develop><loc>boston</loc></develop></project>",
        ])
        .expect("corpus indexes")
}

#[test]
fn lifecycle_lands_in_the_flight_recorder() {
    let mut db = small_db();
    let id = db
        .insert_document("<project><audit/></project>")
        .expect("doc parses");
    db.remove_document(id);
    db.compact();
    let names: Vec<&str> = db.events().events().iter().map(|e| e.name).collect();
    for expected in [
        "ingest.build",
        "ingest.insert",
        "ingest.remove",
        "compact.start",
        "compact.finish",
    ] {
        assert!(names.contains(&expected), "missing {expected} in {names:?}");
    }
    // Sequence numbers are strictly increasing in recorded order.
    let seqs: Vec<u64> = db.events().events().iter().map(|e| e.seq).collect();
    assert!(seqs.windows(2).all(|w| w[0] < w[1]), "{seqs:?}");
    // …and the journal round-trips through JSONL, one line per event.
    assert_eq!(db.events().to_jsonl().lines().count(), names.len());
}

#[test]
fn slow_query_threshold_is_runtime_tunable_and_flight_recorded() {
    let db = small_db();
    // Untraced databases start disarmed: no threshold, no query.slow.
    assert_eq!(db.slow_query_threshold(), None);
    db.query_xpath("/project//loc").expect("query parses");
    assert!(db.events().events().iter().all(|e| e.name != "query.slow"));
    // Arm at zero: every query is now slow, and the change itself is an
    // event.
    db.set_slow_query_threshold(Duration::ZERO);
    assert_eq!(db.slow_query_threshold(), Some(Duration::ZERO));
    db.query_xpath("/project//loc").expect("query parses");
    let events = db.events().events();
    assert!(events
        .iter()
        .any(|e| e.name == "config.slow_query_threshold"));
    let slow: Vec<_> = events.iter().filter(|e| e.name == "query.slow").collect();
    assert_eq!(slow.len(), 1);
    assert_eq!(slow[0].severity, Severity::Warn);
    assert_eq!(slow[0].message, "/project//loc");
}

#[test]
fn tracer_threshold_moves_in_lockstep() {
    let db = DatabaseBuilder::new()
        .trace_config(TraceConfig {
            slow_threshold: Duration::from_secs(5),
            ..TraceConfig::default()
        })
        .build_from_xml(["<a><b/></a>"])
        .expect("corpus indexes");
    // Armed from the trace config.
    assert_eq!(db.slow_query_threshold(), Some(Duration::from_secs(5)));
    assert!(db.slow_queries().is_empty());
    // Lowering it to zero routes every traced query into the slow log AND
    // the flight recorder.
    db.set_slow_query_threshold(Duration::ZERO);
    db.query_xpath("/a/b").expect("query parses");
    assert_eq!(db.slow_queries().len(), 1);
    assert!(db.events().events().iter().any(|e| e.name == "query.slow"));
}

/// The ISSUE's acceptance scenario: a deterministically injected p99
/// latency spike must raise exactly one alert (gauge, counter, event),
/// and the identical clean run must stay silent.
#[test]
fn anomaly_detector_flags_an_injected_spike_and_stays_silent_when_clean() {
    let db = small_db();
    let registry = db.metrics_registry().clone();
    let policy = SloPolicy {
        warmup_intervals: 2,
        burn_intervals: 2,
        min_samples: 4,
        ..SloPolicy::default()
    };
    let detector = AnomalyDetector::new(registry.clone(), policy)
        .events(db.events().clone())
        .watch_latency("index.search");
    let h = registry.histogram("index.search");
    // Clean phase: steady ~1ms intervals, well past warmup.
    let mut alerts = Vec::new();
    for _ in 0..8 {
        for _ in 0..16 {
            h.record(1_000_000);
        }
        alerts.extend(detector.tick());
    }
    assert!(alerts.is_empty(), "clean run must stay silent: {alerts:?}");
    let snap = registry.snapshot();
    assert_eq!(snap.gauge("anomaly.latency.index_search.active"), Some(0));
    assert_eq!(snap.counter("anomaly.alerts"), 0);
    // Spike phase: a sustained 20× regression fires after exactly
    // `burn_intervals` breaching intervals — once, not per interval.
    for _ in 0..4 {
        for _ in 0..16 {
            h.record(20_000_000);
        }
        alerts.extend(detector.tick());
    }
    assert_eq!(alerts.len(), 1, "one alert for one sustained spike");
    assert_eq!(alerts[0].kind, AnomalyKind::LatencyP99);
    assert_eq!(alerts[0].metric, "index.search");
    assert!(alerts[0].observed > alerts[0].baseline);
    let snap = registry.snapshot();
    assert_eq!(snap.gauge("anomaly.latency.index_search.active"), Some(1));
    assert_eq!(snap.counter("anomaly.alerts"), 1);
    let events = db.events().events();
    let alert_events: Vec<_> = events
        .iter()
        .filter(|e| e.name == "anomaly.latency")
        .collect();
    assert_eq!(alert_events.len(), 1);
    assert_eq!(alert_events[0].severity, Severity::Warn);
    assert_eq!(alert_events[0].message, "index.search");
    // Recovery: healthy intervals clear the alert and flight-record it.
    for _ in 0..6 {
        for _ in 0..16 {
            h.record(1_000_000);
        }
        detector.tick();
    }
    let snap = registry.snapshot();
    assert_eq!(snap.gauge("anomaly.latency.index_search.active"), Some(0));
    assert!(db
        .events()
        .events()
        .iter()
        .any(|e| e.name == "anomaly.clear"));
}

#[test]
fn phase_profile_attributes_real_work() {
    let mut db = small_db();
    db.query_xpath("/project//loc").expect("query parses");
    db.insert_document("<project><x/></project>")
        .expect("doc parses");
    db.compact();
    let profile = db.phase_profile();
    assert!(profile.total_ns() > 0);
    let collapsed = db.phase_profile().to_collapsed();
    for needle in [
        "ingest;sequence.encode ",
        "query;query.parse ",
        "update;update.insert ",
        "update;index.compact ",
    ] {
        assert!(
            collapsed.contains(needle),
            "missing {needle:?}:\n{collapsed}"
        );
    }
    // Every line is `frame;frame <u64>`.
    for line in collapsed.lines() {
        let (stack, value) = line.rsplit_once(' ').expect("value tail");
        assert!(value.parse::<u64>().is_ok(), "{line}");
        assert!(stack.split(';').all(|f| !f.is_empty()), "{line}");
    }
}

#[test]
fn diagnostics_bundle_is_complete_and_self_describing() {
    let dir = std::env::temp_dir().join(format!("xseq-diag-it-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut db = DatabaseBuilder::new()
        .trace_config(TraceConfig {
            sample_rate: 1.0,
            slow_threshold: Duration::ZERO,
            ..TraceConfig::default()
        })
        .build_from_xml(["<a><b>boston</b></a>", "<a><c/></a>"])
        .expect("corpus indexes");
    db.query_xpath("/a/b").expect("query parses");
    db.insert_document("<a><d/></a>").expect("doc parses");
    db.compact();
    let report = db.diagnostics(&dir).expect("bundle writes");
    assert_eq!(report.dir, dir);
    assert_eq!(
        report.files,
        vec![
            "metrics.prom",
            "metrics.json",
            "stats.txt",
            "workload.json",
            "heap.json",
            "traces_recent.json",
            "traces_slow.json",
            "events.jsonl",
            "profile.collapsed",
            "manifest.json",
        ]
    );
    for name in &report.files {
        assert!(dir.join(name).is_file(), "missing {name}");
    }
    let manifest = std::fs::read_to_string(dir.join("manifest.json")).expect("manifest reads");
    for key in [
        "\"version\"",
        "\"sequencing\":\"probability\"",
        "\"shards\":1",
        "\"docs\":3",
        "\"tracing\":true",
        "\"slow_threshold_ns\":0",
        "\"files\":[\"metrics.prom\"",
    ] {
        assert!(manifest.contains(key), "manifest misses {key}: {manifest}");
    }
    let heap = std::fs::read_to_string(dir.join("heap.json")).expect("heap reads");
    assert!(
        heap.contains("\"shards\":[{\"shard\":0,"),
        "heap.json misses the per-shard breakdown: {heap}"
    );
    // The journal artifact carries the same events the live journal holds.
    let jsonl = std::fs::read_to_string(dir.join("events.jsonl")).expect("journal reads");
    assert_eq!(jsonl.lines().count(), db.events().events().len());
    assert!(jsonl.contains("\"name\":\"compact.finish\""));
    // metrics.prom is promlint-clean, straight from the exporter.
    let prom = std::fs::read_to_string(dir.join("metrics.prom")).expect("prom reads");
    assert!(xseq::telemetry::lint_prometheus(&prom).is_empty());
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn sharded_diagnostics_enumerate_every_shard() {
    let dir = std::env::temp_dir().join(format!("xseq-diag-sh-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut db = DatabaseBuilder::new()
        .shards(3)
        .build_from_xml(["<a><b/></a>", "<a><c/></a>", "<a><d/></a>", "<a><e/></a>"])
        .expect("corpus indexes");
    db.insert_document("<a><f/></a>").expect("doc parses");
    db.query_xpath("/a/b").expect("query parses");
    db.diagnostics(&dir).expect("bundle writes");
    let stats = std::fs::read_to_string(dir.join("stats.txt")).expect("stats reads");
    assert!(stats.starts_with("database: 5 docs"), "{stats}");
    assert!(stats.contains("3 shard(s)"), "{stats}");
    for s in 0..3 {
        assert!(stats.contains(&format!("shard {s}:")), "{stats}");
    }
    let heap = std::fs::read_to_string(dir.join("heap.json")).expect("heap reads");
    for s in 0..3 {
        assert!(heap.contains(&format!("{{\"shard\":{s},")), "{heap}");
    }
    let manifest = std::fs::read_to_string(dir.join("manifest.json")).expect("manifest reads");
    assert!(manifest.contains("\"shards\":3"), "{manifest}");
    assert!(manifest.contains("\"docs\":5"), "{manifest}");
    // The per-shard overlay gauges reach the exporter, and the aggregate
    // gauges carry the cross-shard sums.
    let prom = std::fs::read_to_string(dir.join("metrics.prom")).expect("prom reads");
    assert!(xseq::telemetry::lint_prometheus(&prom).is_empty());
    assert!(prom.contains("index_shard0_delta_sequences"), "{prom}");
    std::fs::remove_dir_all(&dir).expect("cleanup");
}
