//! Memory/disk agreement: the paged index answers every query exactly like
//! the in-memory trie, through a real file, under tiny buffer pools.

use rand::rngs::StdRng;
use rand::SeedableRng;
use xseq::datagen::{random_query_tree, XmarkGenerator, XmarkOptions};
use xseq::index::{tree_search, QuerySequence, XmlIndex};
use xseq::schema::{ProbabilityModel, WeightMap};
use xseq::sequence::{sequence_document, Strategy};
use xseq::storage::{write_paged_trie, FileStore, MemStore, PagedTrie};
use xseq::{Corpus, PlanOptions, ValueMode};

fn build() -> (Corpus, XmlIndex) {
    let mut corpus = Corpus::new(ValueMode::Intern);
    corpus.docs =
        XmarkGenerator::new(3, XmarkOptions::default()).generate(400, &mut corpus.symbols);
    let model = ProbabilityModel::estimate(&corpus.docs, &mut corpus.paths, 0);
    let strategy = Strategy::Probability(model.priorities(&corpus.paths, &WeightMap::default()));
    let index = XmlIndex::build(
        &corpus.docs,
        &mut corpus.paths,
        strategy,
        PlanOptions::default(),
    );
    (corpus, index)
}

#[test]
fn mem_paged_equivalence_over_random_queries() {
    let (mut corpus, index) = build();
    let mut store = MemStore::new();
    write_paged_trie(index.trie(), &mut store).unwrap();
    let paged = PagedTrie::open(store, 32).unwrap();
    assert_eq!(paged.node_count(), index.node_count());

    let mut rng = StdRng::seed_from_u64(77);
    let docs = corpus.docs.clone();
    for i in 0..50 {
        let src = &docs[(i * 13) % docs.len()];
        let qt = random_query_tree(src, 2 + i % 7, &mut rng);
        let seq = sequence_document(&qt, &mut corpus.paths, index.strategy());
        let q = QuerySequence::from_sequence(&seq, &corpus.paths);
        let (mem, _) = tree_search(index.trie(), &q);
        let (disk, _) = tree_search(&paged, &q);
        assert_eq!(mem, disk, "query #{i}");
        assert!(!mem.is_empty(), "source doc must match");
    }
}

#[test]
fn file_backed_index_survives_reopen() {
    let (mut corpus, index) = build();
    let dir = std::env::temp_dir().join(format!("xseq-int-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("xmark.pages");
    {
        let mut store = FileStore::create(&path).unwrap();
        write_paged_trie(index.trie(), &mut store).unwrap();
    }
    let paged = PagedTrie::open(FileStore::open(&path).unwrap(), 64).unwrap();

    let mut rng = StdRng::seed_from_u64(11);
    let docs = corpus.docs.clone();
    for i in 0..20 {
        let src = &docs[(i * 3) % docs.len()];
        let qt = random_query_tree(src, 3, &mut rng);
        let seq = sequence_document(&qt, &mut corpus.paths, index.strategy());
        let q = QuerySequence::from_sequence(&seq, &corpus.paths);
        let (mem, _) = tree_search(index.trie(), &q);
        let (disk, _) = tree_search(&paged, &q);
        assert_eq!(mem, disk);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn pool_size_changes_io_not_answers() {
    let (mut corpus, index) = build();
    let mut store = MemStore::new();
    write_paged_trie(index.trie(), &mut store).unwrap();

    // one shared query
    let doc = corpus.docs[0].clone();
    let seq = sequence_document(&doc, &mut corpus.paths, index.strategy());
    let q = QuerySequence::from_sequence(&seq, &corpus.paths);

    let mut answers = Vec::new();
    let mut misses = Vec::new();
    for cap in [1usize, 8, 1024] {
        let mut s2 = MemStore::new();
        write_paged_trie(index.trie(), &mut s2).unwrap();
        let paged = PagedTrie::open(s2, cap).unwrap();
        paged.reset_pool();
        let (docs, _) = tree_search(&paged, &q);
        answers.push(docs);
        misses.push(paged.pool_stats().misses);
    }
    assert_eq!(answers[0], answers[1]);
    assert_eq!(answers[1], answers[2]);
    assert!(
        misses[0] >= misses[2],
        "a tiny pool cannot do fewer disk accesses: {misses:?}"
    );
}
