//! Parallel ingest determinism and shared-read query execution.
//!
//! The parallel pipeline's contract is *bit-identical output*: for any
//! corpus, any thread count, and every sequencing strategy, the frozen
//! index (trie arena, labels, path links, end nodes) must equal the
//! sequential build's, and concurrent readers of one database must see
//! exactly the answers a serial query loop produces.

use proptest::prelude::*;
use xseq::datagen::{SyntheticDataset, SyntheticParams};
use xseq::schema::{ProbabilityModel, WeightMap};
use xseq::sequence::Strategy;
use xseq::{
    DatabaseBuilder, Document, Error, PathTable, PlanOptions, Pool, Sequencing, SymbolTable,
    ValueMode, XmlIndex,
};

/// The four sequencing strategies, each rebuilt against the path table it
/// will be used with (probability priorities hold table-specific path ids).
fn strategy(kind: usize, docs: &[Document], paths: &mut PathTable) -> Strategy {
    match kind {
        0 => Strategy::DepthFirst,
        1 => Strategy::BreadthFirst,
        2 => Strategy::Random { seed: 0x5eed },
        _ => {
            let model = ProbabilityModel::estimate(docs, paths, 0);
            Strategy::Probability(model.priorities(paths, &WeightMap::default()))
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Arbitrary corpus × all 4 strategies × 1–8 threads: the parallel
    /// build is byte-equal to the sequential one and passes the full
    /// integrity verifier.  (`identical_pct` stays 0 — breadth-first
    /// sequencing is only defined without identical siblings.)
    #[test]
    fn parallel_build_is_bit_identical(
        seed in 0u64..1_000,
        ndocs in 1usize..40,
        threads in 1usize..=8,
        max_fanout in 1u16..4,
    ) {
        let params = SyntheticParams {
            max_height: 4,
            max_fanout,
            value_pct: 25,
            identical_pct: 0,
            prob_floor_pct: 30,
        };
        let mut symbols = SymbolTable::with_value_mode(ValueMode::Intern);
        let docs = SyntheticDataset::generate(&params, ndocs, seed, &mut symbols).docs;
        for kind in 0..4 {
            let mut pt_seq = PathTable::new();
            let strat = strategy(kind, &docs, &mut pt_seq);
            let seq = XmlIndex::build(&docs, &mut pt_seq, strat, PlanOptions::default());

            let mut pt_par = PathTable::new();
            let strat = strategy(kind, &docs, &mut pt_par);
            let par = XmlIndex::build_parallel(
                &docs,
                &mut pt_par,
                strat,
                PlanOptions::default(),
                None,
                &Pool::new(threads),
            );
            prop_assert!(
                par.trie().identical_to(seq.trie()),
                "strategy {} diverged at {} threads", kind, threads
            );
            prop_assert_eq!(pt_seq.len(), pt_par.len(), "path tables diverged");
            prop_assert_eq!(par.data_paths(), seq.data_paths());
            let report = par.verify_integrity(&mut pt_par);
            prop_assert!(report.is_clean(), "{}", report.render());
        }
    }
}

const CORPUS: [&str; 6] = [
    "<p><r><l>boston</l></r></p>",
    "<p><d><l>boston</l></d></p>",
    "<p><r><l>newyork</l></r></p>",
    "<p><l><b/></l><l><s/></l></p>",
    "<q><a/><b><c/></b></q>",
    "<p><r><l>austin</l></r><r><l>boston</l></r></p>",
];

const QUERIES: [&str; 7] = [
    "/p//l[text='boston']",
    "//l",
    "/p/r",
    "/q/b/c",
    "/p/r/l[text='austin']",
    "//l[text='boston']",
    "/p/d",
];

#[test]
fn threaded_database_build_answers_like_sequential() {
    for sequencing in [Sequencing::DepthFirst, Sequencing::Probability] {
        let serial = DatabaseBuilder::new()
            .sequencing(sequencing)
            .build_from_xml(CORPUS)
            .unwrap();
        for threads in [2, 4, 8] {
            // shards(1): trie bit-identity is a single-shard property —
            // the sharded equivalences live in integration_sharding.rs.
            let mut parallel = DatabaseBuilder::new()
                .sequencing(sequencing)
                .threads(threads)
                .shards(1)
                .build_from_xml(CORPUS)
                .unwrap();
            assert!(
                parallel.index().trie().identical_to(serial.index().trie()),
                "{sequencing:?} at {threads} threads"
            );
            assert!(parallel.verify_integrity().is_clean());
            // ingest telemetry survives the fan-out: one sample per doc
            let snap = parallel.metrics();
            assert_eq!(
                snap.histogram("xml.parse").unwrap().count,
                CORPUS.len() as u64
            );
            assert_eq!(
                snap.histogram("sequence.encode").unwrap().count,
                CORPUS.len() as u64
            );
            for q in QUERIES {
                assert_eq!(
                    serial.query_xpath(q).unwrap(),
                    parallel.query_xpath(q).unwrap(),
                    "{q}"
                );
            }
        }
    }
}

#[test]
fn query_batch_equals_sequential_loop() {
    let db = DatabaseBuilder::new()
        .threads(8)
        .build_from_xml(CORPUS)
        .unwrap();
    // known expressions, a provably-empty one, and a syntax error
    let mut exprs: Vec<&str> = QUERIES.to_vec();
    exprs.push("/nosuchelement/anywhere");
    exprs.push("not an xpath");
    let batch = db.query_batch(&exprs);
    assert_eq!(batch.len(), exprs.len());
    for (expr, got) in exprs.iter().zip(&batch) {
        assert_eq!(got, &db.query_xpath(expr), "{expr}");
    }
    assert_eq!(batch[exprs.len() - 2], Ok(Vec::new()), "unknown symbol");
    assert!(matches!(batch[exprs.len() - 1], Err(Error::Query(_))));
}

#[test]
fn scoped_threads_share_one_database() {
    let db = DatabaseBuilder::new().build_from_xml(CORPUS).unwrap();
    let db = &db;
    std::thread::scope(|s| {
        for _ in 0..8 {
            s.spawn(move || {
                for q in QUERIES {
                    let hits = db.query_xpath(q).unwrap();
                    assert_eq!(hits, db.query_xpath(q).unwrap(), "{q}");
                }
            });
        }
    });
}

#[test]
fn spot_check_rate_holds_across_concurrent_queries() {
    let db = DatabaseBuilder::new()
        .integrity_spot_check(0.5)
        .build_from_xml(CORPUS)
        .unwrap();
    // 40 queries on 8 scoped threads: the atomic accumulator hands each
    // query a disjoint window, so exactly 20 spot checks fire no matter
    // how the threads interleave.
    let db = &db;
    let fired = std::sync::atomic::AtomicUsize::new(0);
    let fired_ref = &fired;
    std::thread::scope(|s| {
        for _ in 0..8 {
            s.spawn(move || {
                for q in QUERIES.iter().cycle().take(5) {
                    if db.query_xpath_full(q).unwrap().integrity.is_some() {
                        // relaxed: test-only tally, read after the join
                        fired_ref.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }
                }
            });
        }
    });
    // relaxed: read after the scope join, fully ordered by it
    let fired = fired.load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(fired, 20, "fixed-point sampling stays exact under &self");
}
